//! Property tests for the capacity-tiering subsystem: under *any*
//! interleaving of TTL'd PUTs, GETs, DELETEs, clock advances and
//! capacity ticks on a mempool far smaller than the key population,
//!
//! * the accounting invariant holds — the bytes charged to live items
//!   always equal the mempool's used bytes (every eviction released its
//!   whole reservation, every expiry too);
//! * an expired key is never served;
//! * a served value is always the last value written for that key;
//! * draining the store returns the pool to zero.

use minos_kv::{CapacityConfig, EvictionPolicy, Store, StoreConfig};
use proptest::prelude::*;
use proptest::TestCaseError;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    /// PUT with a value length and TTL (0 = never expires).
    Put(u64, usize, u64),
    Get(u64),
    Delete(u64),
    /// Advance the store clock by some nanoseconds.
    Advance(u64),
    /// One housekeeping tick (expiry sweep + watermark eviction).
    Tick,
}

fn arb_put() -> impl Strategy<Value = Op> {
    (0u64..64, 1usize..2048, prop_oneof![Just(0u64), 1u64..5])
        .prop_map(|(k, len, ttl)| Op::Put(k, len, ttl))
}

fn arb_op() -> impl Strategy<Value = Op> {
    // 64 keys of up to 2 KiB against a 16 KiB pool: only a fraction of
    // the population fits, so eviction runs constantly. The vendored
    // `prop_oneof!` is uniform-only, so PUT/GET arms are repeated to
    // weight the mix 4:3 over the housekeeping ops.
    let key = 0u64..64;
    prop_oneof![
        arb_put(),
        arb_put(),
        arb_put(),
        arb_put(),
        key.clone().prop_map(Op::Get),
        key.clone().prop_map(Op::Get),
        key.clone().prop_map(Op::Get),
        key.prop_map(Op::Delete),
        (1u64..4_000_000).prop_map(Op::Advance),
        Just(Op::Tick),
    ]
}

/// A deterministic per-(key, version) byte so served values can be
/// checked against the model without storing them.
fn fill(key: u64, version: u64) -> u8 {
    (key.wrapping_mul(31).wrapping_add(version.wrapping_mul(7)) % 251) as u8
}

fn churny_store(policy: EvictionPolicy) -> Store {
    Store::new(StoreConfig {
        partitions: 2,
        buckets_per_partition: 8,
        overflow_per_partition: 16,
        items_per_partition: 64,
        mempool_bytes: 16 << 10,
        max_value_bytes: 1 << 16,
        capacity: CapacityConfig {
            policy,
            ..CapacityConfig::default()
        },
    })
}

/// What the model remembers about a key it wrote.
struct Written {
    len: usize,
    version: u64,
    /// `u64::MAX` = never expires.
    deadline_ns: u64,
}

fn run_interleaving(policy: EvictionPolicy, ops: &[Op]) -> Result<(), TestCaseError> {
    let store = churny_store(policy);
    let mut model: HashMap<u64, Written> = HashMap::new();
    let mut now_ns = 1u64;
    let mut version = 0u64;
    store.set_clock_ns(now_ns);

    for op in ops {
        match op {
            Op::Put(k, len, ttl_ms) => {
                version += 1;
                let value = vec![fill(*k, version); *len];
                match store.put_with_ttl(*k, &value, *ttl_ms) {
                    Ok(()) => {
                        model.insert(
                            *k,
                            Written {
                                len: *len,
                                version,
                                deadline_ns: if *ttl_ms == 0 {
                                    u64::MAX
                                } else {
                                    now_ns + ttl_ms * 1_000_000
                                },
                            },
                        );
                    }
                    // Under eviction pressure a PUT may still fail
                    // (e.g. every resident item is referenced); the
                    // key's previous value is gone either way.
                    Err(_) => {
                        model.remove(k);
                    }
                }
            }
            Op::Get(k) => {
                if let Some(got) = store.get(*k) {
                    // The store may have evicted any key, so a miss is
                    // always legal — but a *hit* must be the model's
                    // latest unexpired value, byte for byte.
                    let Some(w) = model.get(k) else {
                        return Err(TestCaseError::fail(format!(
                            "key {k} served after the model dropped it"
                        )));
                    };
                    prop_assert!(
                        w.deadline_ns > now_ns,
                        "key {} served {}ns past its deadline",
                        k,
                        now_ns - w.deadline_ns
                    );
                    prop_assert_eq!(got.len(), w.len);
                    prop_assert!(got.iter().all(|&b| b == fill(*k, w.version)));
                }
            }
            Op::Delete(k) => {
                store.delete(*k);
                model.remove(k);
            }
            Op::Advance(ns) => {
                now_ns += ns;
                store.set_clock_ns(now_ns);
            }
            Op::Tick => {
                store.capacity_tick(0, 1, now_ns);
            }
        }
        // The accounting invariant, cross-checked after *every* op:
        // bytes charged to live items == bytes the pool thinks are out.
        prop_assert_eq!(store.audit_charged_bytes(), store.mempool().used_bytes());
    }

    prop_assert_eq!(
        store.stats().accounting_warnings,
        0,
        "watermark enforcement claimed an over-high pool it could not drain"
    );

    // Drain: every released reservation must come back to the pool.
    for k in 0..64 {
        store.delete(k);
    }
    prop_assert_eq!(store.len(), 0);
    prop_assert_eq!(store.mempool().used_bytes(), 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn clock_interleavings_hold_invariants(ops in prop::collection::vec(arb_op(), 1..250)) {
        run_interleaving(EvictionPolicy::Clock, &ops)?;
    }

    #[test]
    fn size_aware_interleavings_hold_invariants(ops in prop::collection::vec(arb_op(), 1..250)) {
        run_interleaving(EvictionPolicy::SizeAwareClock, &ops)?;
    }
}
