//! Offline-vendored subset of the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `bytes` API it actually uses:
//! [`Bytes`] (cheaply cloneable, sliceable, shared byte buffers),
//! [`BytesMut`] (an append buffer that freezes into [`Bytes`]) and the
//! big-endian [`Buf`]/[`BufMut`] cursor traits. Semantics follow the
//! real crate; performance characteristics are close enough for this
//! project (clone and slice are O(1) via `Arc`).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Object-safe view of a foreign buffer owner backing a [`Bytes`]
/// (see [`Bytes::from_owner`]).
trait ByteOwner: Send + Sync {
    fn as_bytes(&self) -> &[u8];
}

impl<T: AsRef<[u8]> + Send + Sync> ByteOwner for T {
    fn as_bytes(&self) -> &[u8] {
        self.as_ref()
    }
}

/// Storage behind a [`Bytes`] window: either a plain shared slice or a
/// caller-supplied owner whose `Drop` reclaims the buffer (buffer
/// pools use this to return slots when the last clone drops).
#[derive(Clone)]
enum Repr {
    Shared(Arc<[u8]>),
    Owned(Arc<dyn ByteOwner>),
}

/// A cheaply cloneable, contiguous, immutable byte buffer.
///
/// Internally a refcounted buffer plus a window; `clone` and `slice`
/// are O(1) and never copy.
#[derive(Clone)]
pub struct Bytes {
    data: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// Builds a buffer from a static slice. Unlike the real `bytes`
    /// crate this copies the data into the shared allocation (one-time
    /// cost at construction; clones and slices stay O(1)).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            data: Repr::Shared(Arc::from(s)),
            start: 0,
            end: s.len(),
        }
    }

    /// Copies `s` into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes {
            data: Repr::Shared(Arc::from(s)),
            start: 0,
            end: s.len(),
        }
    }

    /// Wraps a caller-owned buffer without copying. The `Bytes` (and
    /// every clone/slice of it) keeps `owner` alive; when the last
    /// reference drops, `owner`'s `Drop` runs — which is how pooled
    /// buffers return to their pool. `owner.as_ref()` must be stable:
    /// it is re-evaluated on every access and must always return the
    /// same slice.
    pub fn from_owner<O>(owner: O) -> Self
    where
        O: AsRef<[u8]> + Send + Sync + 'static,
    {
        let end = owner.as_ref().len();
        Bytes {
            data: Repr::Owned(Arc::new(owner)),
            start: 0,
            end,
        }
    }

    /// Number of bytes in the window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-window of this buffer without copying.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The window as a slice.
    pub fn as_slice(&self) -> &[u8] {
        let full: &[u8] = match &self.data {
            Repr::Shared(data) => data,
            Repr::Owned(owner) => owner.as_bytes(),
        };
        &full[self.start..self.end]
    }

    /// Copies the window into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Repr::Shared(Arc::from(v.into_boxed_slice())),
            start: 0,
            end: len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "... ({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Clears the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

/// Read cursor over a byte buffer. Multi-byte reads are big-endian,
/// matching the real `bytes` crate (and network byte order).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread window.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write cursor over a growable byte buffer. Multi-byte writes are
/// big-endian.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Writes into a fixed slice, advancing the window — matching the real
/// `bytes` crate's `impl BufMut for &mut [u8]`.
///
/// # Panics
///
/// Panics if a write exceeds the remaining slice.
impl BufMut for &mut [u8] {
    fn put_slice(&mut self, src: &[u8]) {
        assert!(src.len() <= self.len(), "buffer overflow");
        let (head, tail) = std::mem::take(self).split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(1);
        buf.put_u16(0x0203);
        buf.put_u32(0x0405_0607);
        buf.put_u64(0x0809_0a0b_0c0d_0e0f);
        buf.put_slice(b"xyz");
        let mut rd = buf.freeze();
        assert_eq!(rd.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(rd.get_u8(), 1);
        assert_eq!(rd.get_u16(), 0x0203);
        assert_eq!(rd.get_u32(), 0x0405_0607);
        assert_eq!(rd.get_u64(), 0x0809_0a0b_0c0d_0e0f);
        let mut tail = [0u8; 3];
        rd.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!rd.has_remaining());
    }

    #[test]
    fn slices_share_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn advance_is_in_place() {
        let mut b = Bytes::from(vec![9, 8, 7]);
        b.advance(1);
        assert_eq!(&b[..], &[8, 7]);
        assert_eq!(b.get_u8(), 8);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn equality_ignores_provenance() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[0, 1, 2, 3]).slice(1..);
        assert_eq!(a, b);
    }

    #[test]
    fn owner_dropped_with_last_reference() {
        struct Guard(Vec<u8>, std::sync::Arc<std::sync::atomic::AtomicBool>);
        impl AsRef<[u8]> for Guard {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
        impl Drop for Guard {
            fn drop(&mut self) {
                self.1.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let dropped = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let b = Bytes::from_owner(Guard(vec![1, 2, 3, 4], std::sync::Arc::clone(&dropped)));
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[2, 3]);
        drop(b);
        assert!(
            !dropped.load(std::sync::atomic::Ordering::SeqCst),
            "a live slice must keep the owner alive"
        );
        drop(s);
        assert!(dropped.load(std::sync::atomic::Ordering::SeqCst));
    }
}
