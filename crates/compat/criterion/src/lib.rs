//! Offline-vendored subset of `criterion`.
//!
//! The build environment has no crates.io access, so this shim provides
//! the API surface the workspace's microbenchmarks use: `Criterion`,
//! `BenchmarkGroup`, `Bencher::{iter, iter_batched}`, `BatchSize`,
//! `black_box`, `criterion_group!` and `criterion_main!`.
//!
//! Measurement is intentionally simple — a warm-up pass followed by a
//! timed pass, reporting mean ns/iter — with none of criterion's
//! statistics. Good enough to run the harnesses and eyeball regressions.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup. Ignored by this shim.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Per-benchmark timing driver.
pub struct Bencher<'a> {
    config: &'a Config,
    name: String,
}

impl Bencher<'_> {
    /// Times `routine`, printing mean ns/iter.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        let deadline = start + self.config.measurement_time;
        while Instant::now() < deadline {
            for _ in 0..64 {
                black_box(routine());
            }
            iters += 64;
        }
        report(&self.name, start.elapsed(), iters);
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            let input = setup();
            black_box(routine(input));
        }
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        while spent < self.config.measurement_time {
            let mut inputs = Vec::with_capacity(64);
            for _ in 0..64 {
                inputs.push(setup());
            }
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            spent += t.elapsed();
            iters += 64;
        }
        report(&self.name, spent, iters);
    }
}

fn report(name: &str, elapsed: Duration, iters: u64) {
    let ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    println!("bench: {name:<40} {ns:>12.1} ns/iter  ({iters} iters)");
}

#[derive(Clone, Debug)]
struct Config {
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// The benchmark manager.
#[derive(Clone, Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the nominal sample count (ignored by this shim; kept for
    /// API compatibility).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Sets the timed-measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            config: &self.config,
            name: name.to_string(),
        };
        f(&mut b);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
        }
    }
}

/// A named group of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Overrides the sample count for the group (ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides measurement time for the group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.config.measurement_time = d;
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// Declares a group-runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
