//! Offline-vendored subset of `crossbeam`.
//!
//! The build environment has no crates.io access; the only crossbeam
//! type this workspace uses is `crossbeam::queue::ArrayQueue`, so that
//! is what this shim provides — a lock-free bounded MPMC queue using
//! the classic Vyukov sequence-counter algorithm (the same design the
//! real `ArrayQueue` implements).

pub mod queue {
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Slot<T> {
        /// Sequence counter: equals the enqueue position when the slot
        /// is free, position + 1 when it holds a value for that lap.
        seq: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// A bounded lock-free multi-producer multi-consumer queue.
    ///
    /// API-compatible with `crossbeam::queue::ArrayQueue` for the
    /// operations this workspace uses: `new`, `push`, `pop`, `len`,
    /// `is_empty`, `is_full`, `capacity`.
    pub struct ArrayQueue<T> {
        buffer: Box<[Slot<T>]>,
        cap: usize,
        /// Monotonic enqueue position (slot = pos % cap).
        tail: AtomicUsize,
        /// Monotonic dequeue position.
        head: AtomicUsize,
    }

    unsafe impl<T: Send> Send for ArrayQueue<T> {}
    unsafe impl<T: Send> Sync for ArrayQueue<T> {}

    impl<T> ArrayQueue<T> {
        /// Creates a queue holding at most `cap` elements.
        ///
        /// # Panics
        ///
        /// Panics if `cap` is zero.
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "capacity must be non-zero");
            let buffer = (0..cap)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect::<Vec<_>>()
                .into_boxed_slice();
            ArrayQueue {
                buffer,
                cap,
                tail: AtomicUsize::new(0),
                head: AtomicUsize::new(0),
            }
        }

        /// Attempts to enqueue; on a full queue the element is handed
        /// back in `Err`.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut pos = self.tail.load(Ordering::Relaxed);
            loop {
                let slot = &self.buffer[pos % self.cap];
                let seq = slot.seq.load(Ordering::Acquire);
                let diff = seq as isize - pos as isize;
                if diff == 0 {
                    match self.tail.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            unsafe { (*slot.value.get()).write(value) };
                            slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                            return Ok(());
                        }
                        Err(actual) => pos = actual,
                    }
                } else if diff < 0 {
                    // The slot still holds a value from the previous
                    // lap: the queue is full.
                    return Err(value);
                } else {
                    pos = self.tail.load(Ordering::Relaxed);
                }
            }
        }

        /// Attempts to dequeue the oldest element.
        pub fn pop(&self) -> Option<T> {
            let mut pos = self.head.load(Ordering::Relaxed);
            loop {
                let slot = &self.buffer[pos % self.cap];
                let seq = slot.seq.load(Ordering::Acquire);
                let diff = seq as isize - pos.wrapping_add(1) as isize;
                if diff == 0 {
                    match self.head.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.seq
                                .store(pos.wrapping_add(self.cap), Ordering::Release);
                            return Some(value);
                        }
                        Err(actual) => pos = actual,
                    }
                } else if diff < 0 {
                    return None;
                } else {
                    pos = self.head.load(Ordering::Relaxed);
                }
            }
        }

        /// Approximate number of elements (exact when quiescent).
        pub fn len(&self) -> usize {
            let tail = self.tail.load(Ordering::SeqCst);
            let head = self.head.load(Ordering::SeqCst);
            // `head` may have raced past the `tail` we read; clamp to a
            // sane range rather than underflow.
            (tail.wrapping_sub(head) as isize)
                .max(0)
                .min(self.cap as isize) as usize
        }

        /// True if the queue currently holds no elements.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// True if the queue is at capacity.
        pub fn is_full(&self) -> bool {
            self.len() == self.cap
        }

        /// Maximum number of elements the queue can hold.
        pub fn capacity(&self) -> usize {
            self.cap
        }
    }

    impl<T> Drop for ArrayQueue<T> {
        fn drop(&mut self) {
            while self.pop().is_some() {}
        }
    }

    impl<T> std::fmt::Debug for ArrayQueue<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "ArrayQueue {{ .. }}")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc;

        #[test]
        fn fifo_and_capacity() {
            let q = ArrayQueue::new(3);
            assert!(q.is_empty());
            assert_eq!(q.push(1), Ok(()));
            assert_eq!(q.push(2), Ok(()));
            assert_eq!(q.push(3), Ok(()));
            assert!(q.is_full());
            assert_eq!(q.push(4), Err(4));
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.push(4), Ok(()));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), Some(3));
            assert_eq!(q.pop(), Some(4));
            assert_eq!(q.pop(), None);
            assert_eq!(q.capacity(), 3);
        }

        #[test]
        fn wraps_many_laps() {
            let q = ArrayQueue::new(2);
            for i in 0..1000 {
                q.push(i).unwrap();
                assert_eq!(q.pop(), Some(i));
            }
            assert!(q.is_empty());
        }

        #[test]
        fn drops_remaining_elements() {
            let q = ArrayQueue::new(8);
            let item = Arc::new(());
            for _ in 0..5 {
                q.push(Arc::clone(&item)).unwrap();
            }
            drop(q);
            assert_eq!(Arc::strong_count(&item), 1);
        }

        #[test]
        fn mpmc_stress_conserves_elements() {
            let q = Arc::new(ArrayQueue::new(64));
            let total = Arc::new(AtomicUsize::new(0));
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..10_000usize {
                            let mut v = p * 10_000 + i;
                            loop {
                                match q.push(v) {
                                    Ok(()) => break,
                                    Err(back) => {
                                        v = back;
                                        std::hint::spin_loop();
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let q = Arc::clone(&q);
                    let total = Arc::clone(&total);
                    std::thread::spawn(move || {
                        let mut sum = 0usize;
                        let mut got = 0usize;
                        while got < 10_000 {
                            if let Some(v) = q.pop() {
                                sum += v;
                                got += 1;
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                        total.fetch_add(sum, Ordering::Relaxed);
                    })
                })
                .collect();
            for t in producers {
                t.join().unwrap();
            }
            for t in consumers {
                t.join().unwrap();
            }
            let expect: usize = (0..40_000usize).sum();
            assert_eq!(total.load(Ordering::Relaxed), expect);
            assert!(q.is_empty());
        }
    }
}
