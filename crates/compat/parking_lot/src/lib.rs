//! Offline-vendored subset of `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no crates.io access, so this shim provides
//! the `parking_lot` surface the workspace uses — `Mutex` and `RwLock`
//! with panic-free, poison-recovering guards (matching `parking_lot`'s
//! no-poisoning semantics).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never surface poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
