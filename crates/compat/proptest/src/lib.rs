//! Offline-vendored subset of `proptest`.
//!
//! The build environment has no crates.io access, so this shim provides
//! the slice of the proptest API this workspace's property tests use:
//! the `proptest!` macro, `prop_assert*` / `prop_assume!`, `any`,
//! integer/float range strategies, tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, `prop_oneof!`, `.prop_map`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (derived from the test's module path and
//! name) and failing inputs are *not* shrunk — the failing assertion
//! message is reported as-is. That keeps the semantics (randomized
//! coverage, reproducible runs) while fitting in a vendored shim.

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from an arbitrary string (test name).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty selection");
        (self.next_u64() % n as u64) as usize
    }
}

/// Why a generated case did not produce a verdict.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; try another.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct OneOf<V> {
    /// The alternatives, pre-boxed by the macro.
    pub options: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.index(self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range");
                let span = hi - lo;
                if span == u64::MAX {
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.next_u64() % (span + 1)) as $t
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// The full-domain strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates any value of `T` (full domain, uniform).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Collection and sampling strategy factories (`prop::collection::vec`,
/// `prop::sample::select`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s with lengths drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates vectors of `element` values with a length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.clone().sample(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed set.
        pub struct Select<T: Clone>(Vec<T>);

        /// Picks one of `options` uniformly.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select from empty set");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.0[rng.index(self.0.len())].clone()
            }
        }
    }
}

/// Everything tests import: traits, config, `any`, `prop`, and macros.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy,
    };
}

/// The proptest entry macro: declares `#[test]` functions whose
/// arguments are drawn from strategies for a configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut __ran: u32 = 0;
                let mut __attempts: u32 = 0;
                while __ran < __cfg.cases && __attempts < __cfg.cases.saturating_mul(20) {
                    __attempts += 1;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __ran += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}",
                                __ran + 1, stringify!($name), msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Discards the current case (does not count towards `cases`) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf { options: vec![$($crate::Strategy::boxed($strat)),+] }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, f in 0.25f64..=0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..=0.75).contains(&f));
        }

        /// Doc comments on cases must parse.
        #[test]
        fn vec_and_tuple_compose(
            v in prop::collection::vec(any::<u8>(), 1..20),
            (a, b) in (0u32..5, 5u32..10),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(a < b);
        }

        #[test]
        fn assume_rejects(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_select(
            pick in prop_oneof![Just(1u8), Just(2u8), (10u8..20).prop_map(|x| x)],
            sel in prop::sample::select(vec![5u64, 6, 7]),
        ) {
            prop_assert!(pick == 1 || pick == 2 || (10..20).contains(&pick));
            prop_assert!((5..=7).contains(&sel));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
