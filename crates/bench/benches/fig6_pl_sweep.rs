//! Figure 6: maximum throughput under a p99 SLO (50 µs / 100 µs) as the
//! percentage of large requests p_L sweeps over
//! {0.0625, 0.125, 0.25, 0.5, 0.75} %, reported as Minos' speedup over
//! each baseline.

use minos_bench::{banner, by_effort, write_csv};
use minos_sim::sweep::{max_throughput_under_slo, sho_best_under_slo, SloSearch};
use minos_sim::System;
use minos_workload::profiles::{DEFAULT_PROFILE, FIG6_PL_PCT};
use minos_workload::Profile;

fn main() {
    banner(
        "Figure 6",
        "max throughput under SLO vs p_L: Minos speedup over baselines",
        "speedups > 1 everywhere, growing with p_L (up to ~7.4x vs the \
         second-best at p_L=0.75% under the 50us SLO); smaller under the \
         looser 100us SLO",
    );

    let mut search50 = SloSearch::new(50.0);
    let mut search100 = SloSearch::new(100.0);
    let (dur, warm, iters) = by_effort((0.3, 0.08, 2), (0.6, 0.15, 3), (2.0, 0.5, 4));
    for s in [&mut search50, &mut search100] {
        s.duration_s = dur;
        s.warmup_s = warm;
        s.refine_iters = iters;
    }

    let mut rows = Vec::new();
    for (slo_label, search) in [("50us", &search50), ("100us", &search100)] {
        println!("\n--- SLO: p99 <= {slo_label} ---");
        println!(
            "{:>8} | {:>7} | {:>9} {:>9} {:>9}   (speedup of Minos over ...)",
            "pL (%)", "Minos", "HKH", "HKH+WS", "SHO"
        );
        for &pl_pct in &FIG6_PL_PCT {
            let profile = Profile {
                p_large: pl_pct / 100.0,
                ..DEFAULT_PROFILE
            };
            let minos = max_throughput_under_slo(System::Minos, profile, search);
            let hkh = max_throughput_under_slo(System::Hkh, profile, search);
            let ws = max_throughput_under_slo(System::HkhWs, profile, search);
            let sho = sho_best_under_slo(profile, search);
            let speedup = |x: f64| if x > 0.0 { minos / x } else { f64::INFINITY };
            println!(
                "{:>8.4} | {:>7.2} | {:>9.2} {:>9.2} {:>9.2}",
                pl_pct,
                minos,
                speedup(hkh),
                speedup(ws),
                speedup(sho)
            );
            rows.push(format!(
                "{},{},{:.3},{:.3},{:.3},{:.3}",
                slo_label, pl_pct, minos, hkh, ws, sho
            ));
        }
    }
    write_csv(
        "fig6_pl_sweep",
        "slo,p_large_pct,minos_mops,hkh_mops,hkhws_mops,sho_mops",
        &rows,
    );
    println!(
        "\nshape check: speedups grow down each column (more large \
         requests hurt the size-unaware designs more), and the 50us \
         table shows larger speedups than the 100us table."
    );
}
