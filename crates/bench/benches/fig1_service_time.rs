//! Figure 1: GET service time as a function of item size.
//!
//! The paper measures the interval from request reception to reply
//! transmission on the server with a single closed-loop client, and
//! finds ~4 orders of magnitude between tiny and megabyte items.
//!
//! We report two columns: the *threaded* measurement (one Minos core on
//! this machine, closed loop — absolute numbers depend on the host) and
//! the *simulator cost model* (the calibrated service law every sim
//! experiment runs on), so the calibration is auditable.

use minos_bench::{banner, by_effort, write_csv};
use minos_core::client::Client;
use minos_core::server::{MinosServer, ServerConfig};
use minos_sim::CostModel;
use std::time::Duration;

fn main() {
    banner(
        "Figure 1",
        "GET service time vs item size",
        "service time grows ~linearly with size; orders of magnitude \
         between tiny (B) and large (MB) items",
    );

    let sizes: &[u64] = &[
        8, 64, 512, 1_024, 4_096, 16_384, 65_536, 262_144, 524_288, 1_048_576,
    ];
    let reps_small = by_effort(20, 60, 200);
    let model = CostModel::default();

    let mut server = MinosServer::start(ServerConfig::for_test(1, 64));
    let mut client = Client::new(&server, 1, 7);

    println!(
        "{:>10}  {:>14}  {:>16}",
        "size (B)", "measured (us)", "cost model (us)"
    );
    let mut rows = Vec::new();
    for &size in sizes {
        let key = size; // one key per size class
        let value = vec![0xA5u8; size as usize];
        client.send_put(key, &value, size > 1_456);
        assert!(client.drain(Duration::from_secs(60)), "preload {size}");

        // Closed loop: one in-flight GET at a time, like the paper.
        let reps = if size >= 262_144 {
            reps_small / 4 + 1
        } else {
            reps_small
        };
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            client.send_get(key, size > 1_456);
            assert!(client.drain(Duration::from_secs(60)), "get {size}");
        }
        let measured_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let model_us = model.service_ns(size) / 1e3;
        println!("{size:>10}  {measured_us:>14.1}  {model_us:>16.2}");
        rows.push(format!("{size},{measured_us:.2},{model_us:.3}"));
    }
    server.shutdown();

    write_csv(
        "fig1_service_time",
        "size_bytes,measured_us,model_us",
        &rows,
    );
    println!("\nshape check: both columns must grow monotonically with size.");
}
