//! Figure 8: scalability with network bandwidth via reply sampling.
//!
//! The paper cannot add NIC bandwidth, so it shifts the bottleneck
//! toward the CPU by transmitting only S % of the replies
//! (S ∈ {100, 75, 50, 25}) on the read-intensive p_L = 0.75 % workload,
//! then checks that Minos saturates whichever resource binds.

use minos_bench::{banner, by_effort, fmt_us, write_csv};
use minos_sim::{runner, RunConfig, System};
use minos_workload::profiles::DEFAULT_PROFILE;
use minos_workload::Profile;

fn main() {
    banner(
        "Figure 8",
        "reply sampling S: throughput vs p99 and NIC utilization (pL=0.75%)",
        "lower S sustains higher throughput (bottleneck moves to the \
         CPU); NIC utilization near-saturates for S in {100,75,50} and \
         drops for S=25 where the CPU binds",
    );

    let profile = Profile {
        p_large: 0.0075,
        ..DEFAULT_PROFILE
    };
    let duration = by_effort(0.4, 0.8, 3.0);
    let loads: Vec<f64> = by_effort(
        vec![0.5, 1.5, 2.5, 3.5, 4.5],
        vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0],
        vec![
            0.25, 0.75, 1.25, 1.75, 2.25, 2.75, 3.25, 3.75, 4.25, 4.75, 5.25,
        ],
    );

    let mut rows = Vec::new();
    for s_pct in [100u32, 75, 50, 25] {
        println!("\n--- S = {s_pct}% ---");
        println!(
            "{:>7} {:>12} {:>10} {:>9} {:>9}",
            "Mops", "tput (Mops)", "p99 (us)", "NIC tx %", "kept up"
        );
        for &rate in &loads {
            let mut cfg = RunConfig::new(System::Minos, profile, rate);
            cfg.duration_s = duration;
            cfg.warmup_s = duration / 4.0;
            cfg.system.reply_sampling = s_pct as f64 / 100.0;
            let r = runner::run(&cfg);
            println!(
                "{:>7.2} {:>12.3} {} {:>8.1}% {:>9}",
                rate,
                r.throughput_mops,
                fmt_us(r.p99_us()),
                r.nic_tx_util * 100.0,
                r.kept_up()
            );
            rows.push(format!(
                "{},{:.2},{:.3},{:.2},{:.3},{}",
                s_pct,
                rate,
                r.throughput_mops,
                r.p99_us(),
                r.nic_tx_util,
                r.kept_up()
            ));
        }
    }
    write_csv(
        "fig8_bandwidth",
        "sampling_pct,offered_mops,throughput_mops,p99_us,nic_tx_util,kept_up",
        &rows,
    );
    println!(
        "\nshape check: the highest sustainable load grows as S shrinks; \
         at S=100 the NIC tx column approaches 100% at the knee, at S=25 \
         it stays well below while throughput still caps (CPU-bound)."
    );
}
