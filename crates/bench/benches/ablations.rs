//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Large-core stealing** (§6.1's "alternative design"): an extra
//!    large core that steals small requests one at a time should improve
//!    large-request latency at a small cost to small requests.
//! 2. **Static vs dynamic threshold** (§6.2): pinning the threshold
//!    removes the profiling overhead, recovering HKH-level peak
//!    throughput under the CPU-bound 50:50 mix.
//! 3. **Cost functions** (§3 lists packets, bytes, constant+bytes):
//!    how the allocation differs across them.

use minos_bench::{banner, by_effort, fmt_us, write_csv};
use minos_core::config::{AllocationPolicy, ThresholdMode};
use minos_core::cost::CostFn;
use minos_core::{allocate, ThresholdController};
use minos_sim::{runner, RunConfig, System};
use minos_stats::SizeHistogram;
use minos_workload::profiles::WRITE_INTENSIVE_PROFILE;
use minos_workload::DEFAULT_PROFILE;

fn main() {
    banner(
        "Ablations",
        "large-core stealing / static threshold / cost functions",
        "stealing trades a little small-request latency for better \
         large-request latency; a static threshold recovers the 50:50 \
         throughput gap; packet cost allocates fewer large cores than \
         byte cost",
    );
    let duration = by_effort(0.5, 1.2, 4.0);

    // --- 1. Large-core stealing ---------------------------------------
    println!("\n[1] AllocationPolicy: Standard vs LargeSteals (default workload)");
    println!(
        "{:>12} {:>7} | {:>10} {:>12}",
        "policy", "Mops", "p99 (us)", "p99 large"
    );
    let mut rows = Vec::new();
    for rate in by_effort(
        vec![3.0],
        vec![2.0, 3.5, 4.5],
        vec![1.0, 2.0, 3.0, 4.0, 5.0],
    ) {
        for (label, policy) in [
            ("standard", AllocationPolicy::Standard),
            ("large-steals", AllocationPolicy::LargeSteals),
        ] {
            let mut cfg = RunConfig::new(System::Minos, DEFAULT_PROFILE, rate);
            cfg.duration_s = duration;
            cfg.warmup_s = duration / 4.0;
            cfg.system.allocation_policy = policy;
            let r = runner::run(&cfg);
            let p99l = r.latency_large.map_or(f64::INFINITY, |q| q.p99_us);
            println!(
                "{label:>12} {rate:>7.2} | {} {}",
                fmt_us(r.p99_us()),
                fmt_us(p99l)
            );
            rows.push(format!("steal,{label},{rate},{:.2},{p99l:.2}", r.p99_us()));
        }
    }

    // --- 2. Static vs dynamic threshold at 50:50 -----------------------
    println!("\n[2] ThresholdMode: Dynamic vs Static (50:50 mix, CPU-bound)");
    println!(
        "{:>10} {:>7} | {:>12} {:>10}",
        "mode", "Mops", "tput (Mops)", "p99 (us)"
    );
    for rate in by_effort(
        vec![6.5],
        vec![6.0, 6.5, 7.0],
        vec![5.5, 6.0, 6.5, 7.0, 7.5],
    ) {
        for (label, mode) in [
            ("dynamic", ThresholdMode::Dynamic),
            ("static", ThresholdMode::Static(1_456)),
        ] {
            let mut cfg = RunConfig::new(System::Minos, WRITE_INTENSIVE_PROFILE, rate);
            cfg.duration_s = duration;
            cfg.warmup_s = duration / 4.0;
            cfg.system.threshold_mode = mode;
            let r = runner::run(&cfg);
            println!(
                "{label:>10} {rate:>7.2} | {:>12.3} {}",
                r.throughput_mops,
                fmt_us(r.p99_us())
            );
            rows.push(format!(
                "threshold,{label},{rate},{:.3},{:.2}",
                r.throughput_mops,
                r.p99_us()
            ));
        }
    }

    // --- 3. Cost functions ---------------------------------------------
    println!("\n[3] Cost functions: allocation on the default workload histogram");
    let mut hist = SizeHistogram::new();
    for _ in 0..99_875 {
        hist.record(427);
    }
    for _ in 0..125 {
        hist.record(250_750);
    }
    println!(
        "{:>20} {:>12} {:>9} {:>9}",
        "cost fn", "small share", "n_small", "n_large"
    );
    for (label, cost_fn) in [
        ("packets", CostFn::Packets),
        ("bytes", CostFn::Bytes),
        ("const+bytes", CostFn::ConstantPlusBytes { constant: 1_000 }),
    ] {
        let mut c = ThresholdController::new(ThresholdMode::Dynamic, 99.0, 0.9, cost_fn);
        let d = c.epoch_update(&hist);
        let a = allocate(8, d.small_cost_share);
        println!(
            "{label:>20} {:>12.3} {:>9} {:>9}",
            d.small_cost_share, a.n_small, a.n_large
        );
        rows.push(format!(
            "costfn,{label},,{:.4},{}",
            d.small_cost_share, a.n_large
        ));
    }
    write_csv(
        "ablations",
        "ablation,variant,rate_mops,metric_a,metric_b",
        &rows,
    );
}
