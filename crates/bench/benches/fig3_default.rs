//! Figure 3: throughput vs 99th-percentile latency on the default
//! workload (95:5 GET:PUT, p_L = 0.125 %, s_L = 500 KB) for Minos, HKH,
//! HKH+WS and SHO.

use minos_bench::{banner, by_effort, fmt_us, write_csv};
use minos_sim::{runner, RunConfig, System};
use minos_workload::DEFAULT_PROFILE;

fn main() {
    banner(
        "Figure 3",
        "throughput vs p99 latency, default workload",
        "Minos has the lowest p99 at every load and holds 50us to ~90% of \
         peak; HKH is an order of magnitude worse from ~1 Mops; HKH+WS \
         and SHO start near Minos but deteriorate under load; SHO peaks \
         ~10% lower (handoff-bound)",
    );

    let duration = by_effort(0.4, 0.9, 4.0);
    let loads: Vec<f64> = by_effort(
        vec![0.5, 1.5, 3.0, 4.5, 5.5, 6.0],
        vec![0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 4.5, 5.0, 5.5, 6.0, 6.3],
        vec![
            0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.25, 5.5, 5.75, 6.0, 6.25, 6.5,
        ],
    );
    let systems = [
        System::Minos,
        System::HkhWs,
        System::Hkh,
        System::Sho { handoff: 3 },
    ];

    println!(
        "{:>7} | {:>9} {:>9} {:>9} {:>9}   (p99, us; '-' = fell behind)",
        "Mops", "Minos", "HKH+WS", "HKH", "SHO"
    );
    let mut rows = Vec::new();
    for &rate in &loads {
        print!("{rate:>7.2} |");
        for system in systems {
            let mut cfg = RunConfig::new(system, DEFAULT_PROFILE, rate);
            cfg.duration_s = duration;
            cfg.warmup_s = duration / 4.0;
            let r = runner::run(&cfg);
            let p99 = if r.kept_up() {
                r.p99_us()
            } else {
                f64::INFINITY
            };
            print!(" {}", fmt_us(p99));
            rows.push(format!(
                "{},{:.2},{:.3},{:.2},{}",
                r.system,
                rate,
                r.throughput_mops,
                r.p99_us(),
                r.kept_up()
            ));
        }
        println!();
    }
    write_csv(
        "fig3_default",
        "system,offered_mops,throughput_mops,p99_us,kept_up",
        &rows,
    );
    println!(
        "\nshape check: read columns top-down — Minos stays low the \
         longest; HKH degrades first; SHO hits 'inf' (saturation) at a \
         lower rate than the others."
    );
}
