//! Table 1: the item-size variability profiles and the share of bytes
//! moved by large requests, analytically and empirically.

use minos_bench::{banner, by_effort, write_csv};
use minos_workload::{AccessGenerator, Dataset, Rng, TABLE1_PROFILES};

fn main() {
    banner(
        "Table 1",
        "item size variability profiles: % data from large requests",
        "rows: (0.125%,250KB)=25, (0.125%,500KB)=40, (0.125%,1000KB)=60, \
         (0.0625%)=25, (0.25%)=60, (0.5%)=75, (0.75%)=80",
    );
    let paper_pct = [25.0, 40.0, 60.0, 25.0, 60.0, 75.0, 80.0];
    let samples = by_effort(200_000, 1_000_000, 5_000_000);

    println!(
        "{:>9} {:>9} {:>9} {:>10} {:>10}",
        "pL (%)", "sL (KB)", "paper %", "model %", "sampled %"
    );
    let mut rows = Vec::new();
    for (profile, paper) in TABLE1_PROFILES.iter().zip(paper_pct) {
        let model_pct = profile.large_data_share() * 100.0;

        // Empirical check by sampling the actual generator.
        let dataset = Dataset::paper_scaled(16, profile.large_max);
        let gen = AccessGenerator::new(dataset, profile.p_large, profile.get_ratio, profile.zipf_s);
        let mut rng = Rng::new(7);
        let mut large_bytes = 0u64;
        let mut total_bytes = 0u64;
        for _ in 0..samples {
            let op = gen.next_op(&mut rng);
            total_bytes += op.item_size;
            if op.is_large {
                large_bytes += op.item_size;
            }
        }
        let sampled_pct = large_bytes as f64 / total_bytes as f64 * 100.0;

        println!(
            "{:>9.4} {:>9} {:>9.0} {:>10.1} {:>10.1}",
            profile.p_large_pct(),
            profile.large_max / 1_000,
            paper,
            model_pct,
            sampled_pct
        );
        rows.push(format!(
            "{},{},{},{:.2},{:.2}",
            profile.p_large_pct(),
            profile.large_max,
            paper,
            model_pct,
            sampled_pct
        ));
        assert!(
            (model_pct - paper).abs() < 4.0,
            "model diverges from the paper's published column"
        );
    }
    write_csv(
        "table1_profiles",
        "p_large_pct,s_large_bytes,paper_pct,model_pct,sampled_pct",
        &rows,
    );
}
