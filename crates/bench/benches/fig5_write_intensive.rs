//! Figure 5: throughput vs p99 under the write-intensive 50:50 GET:PUT
//! workload.
//!
//! The bottleneck shifts from the NIC to the CPU (PUT replies carry no
//! payload); Minos pays its profiling overhead (~10 % lower peak than
//! HKH) but keeps the order-of-magnitude p99 advantage.

use minos_bench::{banner, by_effort, fmt_us, write_csv};
use minos_sim::{runner, RunConfig, System};
use minos_workload::profiles::WRITE_INTENSIVE_PROFILE;

fn main() {
    banner(
        "Figure 5",
        "throughput vs p99, 50:50 GET:PUT",
        "same ordering as Figure 3; higher absolute peaks than 95:5 \
         (tiny PUT replies); Minos saturates ~10% below HKH because \
         profiling costs CPU, which now binds",
    );

    let duration = by_effort(0.4, 0.9, 4.0);
    let loads: Vec<f64> = by_effort(
        vec![1.0, 3.0, 5.0, 6.0, 6.5],
        vec![0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.0, 6.5, 7.0],
        vec![0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 5.5, 6.0, 6.5, 7.0, 7.5],
    );
    let systems = [
        System::Minos,
        System::HkhWs,
        System::Hkh,
        System::Sho { handoff: 3 },
    ];

    println!(
        "{:>7} | {:>9} {:>9} {:>9} {:>9}   (p99, us)",
        "Mops", "Minos", "HKH+WS", "HKH", "SHO"
    );
    let mut rows = Vec::new();
    for &rate in &loads {
        print!("{rate:>7.2} |");
        for system in systems {
            let mut cfg = RunConfig::new(system, WRITE_INTENSIVE_PROFILE, rate);
            cfg.duration_s = duration;
            cfg.warmup_s = duration / 4.0;
            let r = runner::run(&cfg);
            let p99 = if r.kept_up() {
                r.p99_us()
            } else {
                f64::INFINITY
            };
            print!(" {}", fmt_us(p99));
            rows.push(format!(
                "{},{:.2},{:.3},{:.2},{}",
                r.system,
                rate,
                r.throughput_mops,
                r.p99_us(),
                r.kept_up()
            ));
        }
        println!();
    }
    write_csv(
        "fig5_write_intensive",
        "system,offered_mops,throughput_mops,p99_us,kept_up",
        &rows,
    );
    println!(
        "\nshape check: Minos' column goes 'inf' one step before HKH's \
         (profiling overhead under a CPU-bound mix) while staying far \
         lower at every sustainable load."
    );
}
