//! Figure 7: maximum throughput under a p99 SLO as the maximum large
//! item size s_L sweeps over {250 KB, 500 KB, 1000 KB}, reported as
//! Minos' speedup over each baseline.

use minos_bench::{banner, by_effort, write_csv};
use minos_sim::sweep::{max_throughput_under_slo, sho_best_under_slo, SloSearch};
use minos_sim::System;
use minos_workload::profiles::{DEFAULT_PROFILE, FIG7_SL};
use minos_workload::Profile;

fn main() {
    banner(
        "Figure 7",
        "max throughput under SLO vs s_L: Minos speedup over baselines",
        "speedups > 1 everywhere and growing with s_L (bigger large items \
         block longer); larger under the 50us SLO than under 100us",
    );

    let mut search50 = SloSearch::new(50.0);
    let mut search100 = SloSearch::new(100.0);
    let (dur, warm, iters) = by_effort((0.3, 0.08, 2), (0.6, 0.15, 3), (2.0, 0.5, 4));
    for s in [&mut search50, &mut search100] {
        s.duration_s = dur;
        s.warmup_s = warm;
        s.refine_iters = iters;
    }

    let mut rows = Vec::new();
    for (slo_label, search) in [("50us", &search50), ("100us", &search100)] {
        println!("\n--- SLO: p99 <= {slo_label} ---");
        println!(
            "{:>8} | {:>7} | {:>9} {:>9} {:>9}   (speedup of Minos over ...)",
            "sL (KB)", "Minos", "HKH", "HKH+WS", "SHO"
        );
        for &sl in &FIG7_SL {
            let profile = Profile {
                large_max: sl,
                ..DEFAULT_PROFILE
            };
            let minos = max_throughput_under_slo(System::Minos, profile, search);
            let hkh = max_throughput_under_slo(System::Hkh, profile, search);
            let ws = max_throughput_under_slo(System::HkhWs, profile, search);
            let sho = sho_best_under_slo(profile, search);
            let speedup = |x: f64| if x > 0.0 { minos / x } else { f64::INFINITY };
            println!(
                "{:>8} | {:>7.2} | {:>9.2} {:>9.2} {:>9.2}",
                sl / 1_000,
                minos,
                speedup(hkh),
                speedup(ws),
                speedup(sho)
            );
            rows.push(format!(
                "{},{},{:.3},{:.3},{:.3},{:.3}",
                slo_label, sl, minos, hkh, ws, sho
            ));
        }
    }
    write_csv(
        "fig7_sl_sweep",
        "slo,s_large_bytes,minos_mops,hkh_mops,hkhws_mops,sho_mops",
        &rows,
    );
}
