//! Figure 4: 99th-percentile latency of *large* requests, Minos vs
//! HKH+WS, default workload.
//!
//! Size-aware sharding trades a bounded penalty on the rare large
//! requests for the order-of-magnitude win on the overall p99.

use minos_bench::{banner, by_effort, fmt_us, write_csv};
use minos_sim::{runner, RunConfig, System};
use minos_workload::DEFAULT_PROFILE;

fn main() {
    banner(
        "Figure 4",
        "p99 latency of large requests: Minos vs HKH+WS",
        "Minos penalizes large requests up to ~2x before saturation \
         (it restricts them to a subset of cores); HKH+WS serves them \
         with all cores and does better on this sub-population",
    );

    let duration = by_effort(0.5, 1.2, 4.0);
    let loads: Vec<f64> = by_effort(
        vec![1.0, 3.0, 4.5, 5.5],
        vec![0.5, 1.5, 2.5, 3.5, 4.5, 5.0, 5.5],
        vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0],
    );

    println!(
        "{:>7} | {:>11} {:>11}   (large-request p99, us)",
        "Mops", "Minos", "HKH+WS"
    );
    let mut rows = Vec::new();
    for &rate in &loads {
        print!("{rate:>7.2} |");
        for system in [System::Minos, System::HkhWs] {
            let mut cfg = RunConfig::new(system, DEFAULT_PROFILE, rate);
            cfg.duration_s = duration;
            cfg.warmup_s = duration / 4.0;
            let r = runner::run(&cfg);
            let p99l = r.latency_large.map_or(f64::INFINITY, |q| q.p99_us);
            let p99l = if r.kept_up() { p99l } else { f64::INFINITY };
            print!("   {}", fmt_us(p99l));
            rows.push(format!("{},{:.2},{:.2}", r.system, rate, p99l));
        }
        println!();
    }
    write_csv("fig4_large_reqs", "system,offered_mops,p99_large_us", &rows);
    println!(
        "\nshape check: Minos' column sits above HKH+WS' by a small \
         factor (<= ~2-3x) until both saturate."
    );
}
