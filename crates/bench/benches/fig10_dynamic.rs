//! Figure 10: adaptation to a dynamic workload.
//!
//! p_L steps 0.125 → 0.25 → 0.5 → 0.75 → 0.5 → 0.25 → 0.125 (%) at a
//! fixed arrival rate; the top panel compares the per-second p99 of
//! Minos and HKH+WS, the bottom panel tracks how many cores Minos
//! assigns to large requests.
//!
//! The paper uses 20 s phases over 140 s; the default effort shrinks
//! phases (the controller converges within a couple of 1 s epochs, so
//! the shape is unchanged) — `MINOS_BENCH_FULL=1` runs the full 140 s.

use minos_bench::{banner, by_effort, fmt_us, write_csv};
use minos_sim::{runner, RunConfig, System};
use minos_workload::{PhaseSchedule, DEFAULT_PROFILE};

fn main() {
    banner(
        "Figure 10",
        "dynamic workload: p99 over time + Minos large-core count",
        "Minos tracks each phase change within ~1-2 epochs and stays 1-2 \
         orders of magnitude below HKH+WS at high p_L; the large-core \
         count follows p_L up (to ~4) and back down",
    );

    let phase_s: f64 = by_effort(2.0, 4.0, 20.0);
    // The paper fixes 2.25 Mops, "high load for pL = 0.75". Our cost
    // model's NIC-bound capacity at pL = 0.75% is ~2.1 Mops, so the
    // equivalent high-but-sustainable operating point here is 2.0.
    let rate = 2.0;
    let steps_pct = [0.125, 0.25, 0.5, 0.75, 0.5, 0.25, 0.125];
    let schedule = PhaseSchedule::new(
        steps_pct
            .iter()
            .map(|&p| ((phase_s * 1e9) as u64, p / 100.0))
            .collect(),
    );
    let total_s = phase_s * steps_pct.len() as f64;

    let mut results = Vec::new();
    for system in [System::Minos, System::HkhWs] {
        let mut cfg = RunConfig::new(system, DEFAULT_PROFILE, rate);
        cfg.duration_s = total_s;
        cfg.warmup_s = 0.0; // the whole series is the result
        cfg.schedule = Some(schedule.clone());
        cfg.window_s = by_effort(0.5, 1.0, 1.0);
        cfg.system.epoch_ns = by_effort(250_000_000, 500_000_000, 1_000_000_000);
        results.push(runner::run(&cfg));
    }
    let minos = &results[0];
    let ws = &results[1];

    println!(
        "{:>7} {:>8} | {:>11} {:>11} | {:>12}",
        "t (s)", "pL (%)", "Minos p99", "HKH+WS p99", "large cores"
    );
    let mut rows = Vec::new();
    let n = minos.windows.len().min(ws.windows.len());
    for i in 0..n {
        let w_m = &minos.windows[i];
        let w_w = &ws.windows[i];
        let pl = schedule.value_at((w_m.t_s * 1e9) as u64) * 100.0;
        println!(
            "{:>7.1} {:>8.3} | {} {} | {:>12}",
            w_m.t_s,
            pl,
            fmt_us(w_m.p99_us),
            fmt_us(w_w.p99_us),
            w_m.n_large_cores
        );
        rows.push(format!(
            "{:.2},{:.4},{:.2},{:.2},{}",
            w_m.t_s, pl, w_m.p99_us, w_w.p99_us, w_m.n_large_cores
        ));
    }
    write_csv(
        "fig10_dynamic",
        "t_s,p_large_pct,minos_p99_us,hkhws_p99_us,minos_large_cores",
        &rows,
    );
    println!(
        "\nshape check: the large-core column rises with pL and falls \
         back; Minos' p99 column stays far below HKH+WS' in the \
         high-pL middle phases."
    );
}
