//! Figure 9: per-core load breakdown under p_L ∈ {0.0625, 0.25, 0.75} %.
//!
//! Two views, as in the paper: the share of *operations* each core
//! completes (small cores do far more, large cores far fewer) and the
//! share of *packets* each core handles (roughly uniform — the point of
//! cost-based allocation).

use minos_bench::{banner, by_effort, write_csv};
use minos_sim::{runner, RunConfig, System};
use minos_workload::profiles::DEFAULT_PROFILE;
use minos_workload::Profile;

fn main() {
    banner(
        "Figure 9",
        "per-core share of ops/s and packets/s (Minos)",
        "ops share differs by ~2 orders of magnitude between small and \
         large cores, packet share is roughly uniform; the number of \
         large cores grows with p_L",
    );

    let duration = by_effort(0.6, 1.5, 5.0);
    let mut rows = Vec::new();
    for pl_pct in [0.0625f64, 0.25, 0.75] {
        let profile = Profile {
            p_large: pl_pct / 100.0,
            ..DEFAULT_PROFILE
        };
        // Moderate load, scaled down a little as pL grows (capacity
        // shrinks with more large bytes), mirroring the paper's use of
        // comparable operating points.
        let rate = match pl_pct {
            x if x < 0.1 => 4.0,
            x if x < 0.5 => 3.0,
            _ => 2.0,
        };
        let mut cfg = RunConfig::new(System::Minos, profile, rate);
        cfg.duration_s = duration;
        cfg.warmup_s = duration / 4.0;
        let r = runner::run(&cfg);

        let total_ops: u64 = r.per_core.iter().map(|c| c.ops).sum();
        let total_pkts: u64 = r.per_core.iter().map(|c| c.packets).sum();
        println!("\n--- pL = {pl_pct}% at {rate} Mops ---");
        println!("{:>6} {:>10} {:>12}", "core", "% ops", "% packets");
        for (core, load) in r.per_core.iter().enumerate() {
            let ops_pct = load.ops as f64 / total_ops.max(1) as f64 * 100.0;
            let pkt_pct = load.packets as f64 / total_pkts.max(1) as f64 * 100.0;
            println!("{core:>6} {ops_pct:>10.3} {pkt_pct:>12.3}");
            rows.push(format!("{pl_pct},{core},{ops_pct:.4},{pkt_pct:.4}"));
        }
    }
    write_csv(
        "fig9_load_balance",
        "p_large_pct,core,ops_pct,packets_pct",
        &rows,
    );
    println!(
        "\nshape check: within each block the last core(s) — the large \
         cores — have tiny ops shares but packet shares comparable to \
         the small cores; more cores look 'large' as pL grows."
    );
}
