//! Figure 2: p99 response time vs normalized throughput for the three
//! size-unaware queueing models (nxM/G/1, M/G/n, nxM/G/1+WS), bimodal
//! service with p_L = 0.125 % and K ∈ {1, 10, 100, 1000}.

use minos_bench::{banner, by_effort, write_csv};
use minos_queue_sim::{run_model, Bimodal, Model};

fn main() {
    banner(
        "Figure 2",
        "queueing models: p99 vs normalized throughput (bimodal, K sweep)",
        "a <1% fraction of K=100/1000 requests inflates p99 by 1-2 orders \
         of magnitude even at 10-40% load; nxM/G/1 worst, M/G/n and \
         stealing better at low load but all degrade as load grows",
    );

    let measured = by_effort(40_000, 150_000, 600_000);
    let warmup = measured / 5;
    let loads: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    let ks = [1u64, 10, 100, 1000];

    let mut rows = Vec::new();
    for model in Model::ALL {
        println!("\n--- {} --- (p99 in small-service units)", model.label());
        print!("{:>6}", "load");
        for k in ks {
            print!("  K={k:>5}");
        }
        println!();
        for &load in &loads {
            print!("{load:>6.2}");
            for k in ks {
                let r = run_model(model, 8, Bimodal::paper(k), load, warmup, measured, 42);
                print!("  {:>7.1}", r.p99_units);
                rows.push(format!(
                    "{},{},{:.2},{:.3},{:.3}",
                    model.label(),
                    k,
                    load,
                    r.p99_units,
                    r.throughput
                ));
            }
            println!();
        }
    }
    write_csv(
        "fig2_queueing",
        "model,k,offered_load,p99_units,throughput_per_unit",
        &rows,
    );
    println!(
        "\nshape check: K=1 columns stay near 1-3 units; K=1000 columns \
         explode at moderate load for every model."
    );
}
