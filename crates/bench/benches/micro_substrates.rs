//! Criterion microbenchmarks of the substrates on the datapath:
//! KV GET/PUT, RSS hashing, zipfian sampling, histogram updates,
//! fragmentation round trips and NIC ring bursts.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use minos_kv::{Store, StoreConfig};
use minos_nic::{NicConfig, RssHasher, VirtualNic};
use minos_stats::SizeHistogram;
use minos_wire::frag::fragment_with_id;
use minos_wire::packet::{build_frame, parse_frame, Endpoint};
use minos_workload::{Rng, Zipf};
use std::hint::black_box;

fn bench_kv(c: &mut Criterion) {
    let store = Store::new(StoreConfig::for_items(8, 100_000, 256 << 20));
    for k in 0..50_000u64 {
        store.put(k, &k.to_le_bytes()).unwrap();
    }
    let mut g = c.benchmark_group("kv");
    let mut key = 0u64;
    g.bench_function("get_hit", |b| {
        b.iter(|| {
            key = (key + 1) % 50_000;
            black_box(store.get(black_box(key)))
        })
    });
    g.bench_function("get_miss", |b| {
        b.iter(|| black_box(store.get(black_box(999_999_999))))
    });
    let value = vec![0xAAu8; 100];
    g.bench_function("put_replace_100b", |b| {
        b.iter(|| {
            key = (key + 1) % 50_000;
            store.put(black_box(key), black_box(&value)).unwrap()
        })
    });
    g.finish();
}

fn bench_rss(c: &mut Criterion) {
    let rss = RssHasher::new(8);
    let t = minos_wire::packet::FiveTuple {
        src_ip: 0x0A000001,
        dst_ip: 0x0A000002,
        src_port: 12345,
        dst_port: 9003,
        protocol: 17,
    };
    c.bench_function("rss/toeplitz", |b| {
        b.iter(|| black_box(rss.queue_for(black_box(&t))))
    });
}

fn bench_zipf(c: &mut Criterion) {
    let zipf = Zipf::new(16_000_000, 0.99);
    let mut rng = Rng::new(1);
    c.bench_function("workload/zipf_16M", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
}

fn bench_hist(c: &mut Criterion) {
    let mut h = SizeHistogram::new();
    let mut x = 1u64;
    c.bench_function("stats/size_hist_record", |b| {
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(x % 500_000));
        })
    });
    for v in 0..100_000u64 {
        h.record(v % 500_000);
    }
    c.bench_function("stats/size_hist_p99", |b| {
        b.iter(|| black_box(h.percentile(99.0)))
    });
}

fn bench_wire(c: &mut Criterion) {
    let src = Endpoint::host(1, 100);
    let dst = Endpoint::host(2, 9000);
    c.bench_function("wire/frame_roundtrip_small", |b| {
        b.iter(|| {
            let f = build_frame(black_box(src), black_box(dst), black_box(b"hello world!"));
            black_box(parse_frame(f))
        })
    });
    let big = vec![0u8; 100_000];
    c.bench_function("wire/fragment_100kb", |b| {
        b.iter(|| black_box(fragment_with_id(black_box(1), black_box(&big))))
    });
}

fn bench_nic(c: &mut Criterion) {
    let nic = VirtualNic::new(NicConfig::new(8));
    let frame = build_frame(Endpoint::host(1, 100), Endpoint::host(2, 9003), &[0u8; 64]);
    let pkt = parse_frame(frame).unwrap();
    c.bench_function("nic/deliver_and_burst", |b| {
        b.iter_batched(
            || pkt.clone(),
            |p| {
                nic.deliver_packet(p);
                let mut out = Vec::with_capacity(1);
                nic.rx_burst(3, &mut out, 1);
                black_box(out)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kv, bench_rss, bench_zipf, bench_hist, bench_wire, bench_nic
);
criterion_main!(micro);
