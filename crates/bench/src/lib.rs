//! Shared harness utilities for the per-figure benchmark binaries.
//!
//! Every table and figure of the paper's evaluation has a `[[bench]]`
//! target in this crate (`harness = false`); running `cargo bench`
//! regenerates the full evaluation. Each bench prints the paper's
//! expected shape next to the measured rows and writes a CSV under
//! `target/minos-results/`.
//!
//! Environment knobs:
//! * `MINOS_BENCH_QUICK=1` — shrink sweeps for smoke runs.
//! * `MINOS_BENCH_FULL=1` — paper-scale durations (slow).

#![warn(missing_docs)]

use std::io::Write;
use std::path::PathBuf;

/// Effort level selected via the environment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effort {
    /// Smoke-test durations.
    Quick,
    /// Default: minutes for the full evaluation.
    Normal,
    /// Paper-scale durations.
    Full,
}

/// Reads the effort level from the environment.
pub fn effort() -> Effort {
    if std::env::var("MINOS_BENCH_QUICK").is_ok() {
        Effort::Quick
    } else if std::env::var("MINOS_BENCH_FULL").is_ok() {
        Effort::Full
    } else {
        Effort::Normal
    }
}

/// Picks a value by effort level.
pub fn by_effort<T>(quick: T, normal: T, full: T) -> T {
    match effort() {
        Effort::Quick => quick,
        Effort::Normal => normal,
        Effort::Full => full,
    }
}

/// The directory result CSVs are written to: `target/minos-results/`
/// at the *workspace* root (bench binaries run with the package dir as
/// their working directory, so a relative path would land inside
/// `crates/bench`).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/minos-results"
    ));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes rows to `target/minos-results/<name>.csv`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = out_dir().join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write");
    for r in rows {
        writeln!(f, "{r}").expect("write");
    }
    println!("  [csv] {}", path.display());
}

/// Prints the experiment banner: id, title and the paper's expected
/// shape for easy visual comparison.
pub fn banner(id: &str, title: &str, expectation: &str) {
    println!("\n==============================================================");
    println!("{id}: {title}");
    println!("--------------------------------------------------------------");
    println!("paper expectation: {expectation}");
    println!("effort: {:?}", effort());
    println!("==============================================================");
}

/// Formats a latency for tables: "   12.3" or "  inf".
pub fn fmt_us(v: f64) -> String {
    if v.is_finite() {
        format!("{v:9.1}")
    } else {
        format!("{:>9}", "inf")
    }
}
