//! Property tests: end-to-end wire invariants.
//!
//! * Any message survives encode → fragment → frame → parse → reassemble →
//!   decode, under arbitrary fragment permutations.
//! * The fragment count always equals the cost function's packet count.

use bytes::Bytes;
use minos_wire::frag::{fragment_with_id, Reassembler, Reassembly};
use minos_wire::message::{Body, Message, ReplyStatus};
use minos_wire::packet::{build_frame, parse_frame, Endpoint};
use proptest::prelude::*;

fn arb_message() -> impl Strategy<Value = Message> {
    let value = prop::collection::vec(any::<u8>(), 0..20_000);
    (
        any::<u16>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        0u8..6,
        value,
    )
        .prop_map(|(client_id, request_id, ts, key, kind, value)| {
            let body = match kind {
                0 => Body::Get { key },
                1 => Body::Put {
                    key,
                    value: Bytes::from(value),
                    ttl_ms: 0,
                },
                2 => Body::Delete { key },
                3 => Body::GetReply {
                    status: ReplyStatus::Ok,
                    key,
                    value: Bytes::from(value),
                },
                4 => Body::PutReply {
                    status: ReplyStatus::NotFound,
                    key,
                },
                _ => Body::DeleteReply {
                    status: ReplyStatus::Ok,
                    key,
                },
            };
            Message {
                client_id,
                request_id,
                client_ts_ns: ts,
                body,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn message_roundtrip(msg in arb_message()) {
        let enc = msg.encode();
        prop_assert_eq!(Message::decode(enc).unwrap(), msg);
    }

    #[test]
    fn full_stack_roundtrip_with_shuffled_fragments(
        msg in arb_message(),
        msg_id in any::<u64>(),
        shuffle_seed in any::<u64>(),
    ) {
        let encoded = msg.encode();
        let frag_count = minos_wire::packets_for_payload(encoded.len());
        let mut frags = fragment_with_id(msg_id, &encoded);
        prop_assert_eq!(frags.len() as u32, frag_count);

        // Deterministic Fisher–Yates shuffle.
        let mut state = shuffle_seed | 1;
        for i in (1..frags.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            frags.swap(i, j);
        }

        // Send every fragment through a full frame encode/parse.
        let src = Endpoint::host(1, 777);
        let dst = Endpoint::host(2, 9000);
        let mut reasm = Reassembler::new(4);
        let mut complete = None;
        for f in &frags {
            let frame = build_frame(src, dst, f);
            let pkt = parse_frame(frame).unwrap();
            match reasm.push(pkt.source_endpoint(), pkt.payload) {
                Reassembly::Complete(b) => complete = Some(b),
                Reassembly::Incomplete => {}
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
        let complete = complete.expect("message completed");
        prop_assert_eq!(Message::decode(complete).unwrap(), msg);
    }

    /// Dropping any single fragment of a multi-fragment message prevents
    /// completion (loss is surfaced, never silently corrupted).
    #[test]
    fn dropped_fragment_never_completes(
        len in 2_000usize..10_000,
        drop_idx_seed in any::<usize>(),
    ) {
        let msg: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
        let frags = fragment_with_id(1, &msg);
        prop_assume!(frags.len() > 1);
        let drop_idx = drop_idx_seed % frags.len();
        let mut reasm = Reassembler::new(4);
        for (i, f) in frags.iter().enumerate() {
            if i == drop_idx {
                continue;
            }
            match reasm.push(0, f.clone()) {
                Reassembly::Incomplete => {}
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
        prop_assert_eq!(reasm.pending(), 1);
        prop_assert_eq!(reasm.completed, 0);
    }
}
