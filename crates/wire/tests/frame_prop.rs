//! Property tests pinning the scatter-gather TX path to the contiguous
//! encoders, byte for byte: for every message body and value size,
//! `Message::encode_frame` must serialize to exactly the bytes of
//! `Message::encode`, and `fragment_frame_with_id` must produce exactly
//! the datagrams of `fragment_with_id` — including the UDP header
//! (length + checksum) computed over the uncopied segments. These are
//! the invariants that make the zero-copy redesign invisible on the
//! wire.

use bytes::Bytes;
use minos_wire::frag::{fragment_frame_with_id, fragment_with_id};
use minos_wire::message::{Body, Message, ReplyStatus};
use minos_wire::packet::{
    build_frame, build_frame_into_frame, synthesize, synthesize_frame, Endpoint,
};
use minos_wire::MAX_FRAG_CHUNK;
use proptest::prelude::*;

/// A deterministic value of `len` bytes seeded by `salt`.
fn value(len: usize, salt: u64) -> Bytes {
    Bytes::from(
        (0..len)
            .map(|i| (i as u64).wrapping_mul(salt | 1).wrapping_add(salt >> 3) as u8)
            .collect::<Vec<u8>>(),
    )
}

/// Every message body kind, with value-carrying kinds sized by `len`.
fn bodies(len: usize, salt: u64, key: u64) -> Vec<Body> {
    vec![
        Body::Get { key },
        Body::Delete { key },
        Body::Put {
            key,
            value: value(len, salt),
            ttl_ms: 0,
        },
        Body::GetReply {
            status: ReplyStatus::Ok,
            key,
            value: value(len, salt ^ 0xA5A5),
        },
        Body::GetReply {
            status: ReplyStatus::NotFound,
            key,
            value: Bytes::new(),
        },
        Body::PutReply {
            status: ReplyStatus::OutOfMemory,
            key,
        },
        Body::DeleteReply {
            status: ReplyStatus::Ok,
            key,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `encode_frame` is byte-identical to `encode` for every body kind
    /// and value size — and the value segment really is uncopied (its
    /// bytes alias the source value).
    #[test]
    fn encode_frame_matches_encode(
        len in 0usize..120_000,
        salt in any::<u64>(),
        key in any::<u64>(),
        client_id in any::<u16>(),
        request_id in any::<u64>(),
        ts in any::<u64>(),
    ) {
        for body in bodies(len, salt, key) {
            let msg = Message { client_id, request_id, client_ts_ns: ts, body };
            let contiguous = msg.encode();
            let frame = msg.encode_frame();
            prop_assert_eq!(frame.len(), contiguous.len());
            let (gathered, _) = frame.to_contiguous();
            prop_assert_eq!(&gathered[..], &contiguous[..]);
            // The frame decodes back to the same message.
            let decoded = Message::decode(gathered);
            prop_assert_eq!(decoded.as_ref(), Some(&msg));
        }
    }

    /// Fragmenting a frame yields exactly the datagram bytes that
    /// fragmenting the contiguous encoding yields, fragment by
    /// fragment, and the synthesized headers (UDP length + checksum
    /// over uncopied segments) agree too.
    #[test]
    fn fragment_frame_matches_fragment_bytes(
        // Cross the 1-, 2- and many-fragment boundaries.
        len in 0usize..(4 * MAX_FRAG_CHUNK),
        salt in any::<u64>(),
        msg_id in any::<u64>(),
    ) {
        let msg = Message {
            client_id: 3,
            request_id: 9,
            client_ts_ns: 77,
            body: Body::GetReply {
                status: ReplyStatus::Ok,
                key: 5,
                value: value(len, salt),
            },
        };
        let contiguous = msg.encode();
        let byte_frags = fragment_with_id(msg_id, &contiguous);
        let frame_frags = fragment_frame_with_id(msg_id, &msg.encode_frame());
        prop_assert_eq!(byte_frags.len(), frame_frags.len());

        let src = Endpoint::host(1, 7777);
        let dst = Endpoint::host(2, 9001);
        for (bytes, frame) in byte_frags.iter().zip(&frame_frags) {
            let (gathered, _) = frame.to_contiguous();
            prop_assert_eq!(&gathered[..], &bytes[..]);
            // Header parity: synthesize_frame == synthesize over the
            // gathered payload.
            let via_frame = synthesize_frame(src, dst, frame.clone());
            let via_bytes = synthesize(src, dst, bytes.clone());
            prop_assert_eq!(via_frame.meta, via_bytes.meta);
            prop_assert_eq!(via_frame.wire_len(), via_bytes.wire_len());
            // Full-frame serialization parity (the virtual wire path).
            let mut out = vec![0u8; via_frame.wire_len()];
            let n = build_frame_into_frame(src, dst, frame, &mut out).unwrap();
            let reference = build_frame(src, dst, bytes);
            prop_assert_eq!(&out[..n], &reference[..]);
        }
    }
}
