//! Ethernet II framing.

use bytes::{Buf, BufMut};

/// A 48-bit Ethernet MAC address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// A locally-administered unicast address derived from a host id,
    /// mirroring the `02-00-00-00-00-xx` convention used in the guides'
    /// examples.
    pub fn from_host_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

/// EtherType values understood by this stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum EtherType {
    /// IPv4 (0x0800) — the only payload Minos carries.
    Ipv4 = 0x0800,
}

impl EtherType {
    /// Parses a raw EtherType.
    pub fn from_u16(v: u16) -> Option<Self> {
        match v {
            0x0800 => Some(EtherType::Ipv4),
            _ => None,
        }
    }
}

/// An Ethernet II header (14 bytes on the wire).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload EtherType.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Encoded size in bytes.
    pub const LEN: usize = 14;

    /// Appends the encoded header to `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        buf.put_u16(self.ethertype as u16);
    }

    /// Decodes a header from the front of `buf`, advancing it.
    ///
    /// Returns `None` if the buffer is too short or the EtherType is not
    /// supported.
    pub fn decode<B: Buf>(buf: &mut B) -> Option<Self> {
        if buf.remaining() < Self::LEN {
            return None;
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        buf.copy_to_slice(&mut dst);
        buf.copy_to_slice(&mut src);
        let ethertype = EtherType::from_u16(buf.get_u16())?;
        Some(EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn roundtrip() {
        let h = EthernetHeader {
            dst: MacAddr::from_host_id(1),
            src: MacAddr::from_host_id(2),
            ethertype: EtherType::Ipv4,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), EthernetHeader::LEN);
        let mut rd = buf.freeze();
        let parsed = EthernetHeader::decode(&mut rd).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn short_buffer_fails() {
        let mut buf = bytes::Bytes::from_static(&[0u8; 8]);
        assert!(EthernetHeader::decode(&mut buf).is_none());
    }

    #[test]
    fn unknown_ethertype_fails() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[0u8; 12]);
        buf.put_u16(0x86DD); // IPv6: unsupported
        let mut rd = buf.freeze();
        assert!(EthernetHeader::decode(&mut rd).is_none());
    }

    #[test]
    fn mac_display() {
        assert_eq!(
            MacAddr([0, 1, 2, 0xab, 0xcd, 0xef]).to_string(),
            "00:01:02:ab:cd:ef"
        );
        assert_eq!(
            MacAddr::from_host_id(0x01020304).to_string(),
            "02:00:01:02:03:04"
        );
    }
}
