//! The KV application protocol.
//!
//! The store exposes the usual CRUD semantics (paper §3): `GET(key)` and
//! `PUT(key, value)`, with create/delete treated as PUT variants. Keys are
//! fixed 8-byte values (§5.3: "we keep the size of the keys constant to 8
//! bytes"), so they are carried as `u64`.
//!
//! Every request carries the client's send timestamp; the server echoes it
//! on the reply so the client can compute end-to-end latency without
//! synchronized clocks — exactly the measurement scheme of §5.4.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Operation kinds on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpKind {
    /// GET request.
    GetRequest = 1,
    /// PUT request (also covers create).
    PutRequest = 2,
    /// DELETE request.
    DeleteRequest = 3,
    /// GET reply.
    GetReply = 4,
    /// PUT reply.
    PutReply = 5,
    /// DELETE reply.
    DeleteReply = 6,
}

impl OpKind {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => OpKind::GetRequest,
            2 => OpKind::PutRequest,
            3 => OpKind::DeleteRequest,
            4 => OpKind::GetReply,
            5 => OpKind::PutReply,
            6 => OpKind::DeleteReply,
            _ => return None,
        })
    }

    /// True for the request kinds.
    pub fn is_request(self) -> bool {
        matches!(
            self,
            OpKind::GetRequest | OpKind::PutRequest | OpKind::DeleteRequest
        )
    }
}

/// Status code on replies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ReplyStatus {
    /// The operation succeeded.
    Ok = 0,
    /// GET/DELETE on a key that is not stored.
    NotFound = 1,
    /// PUT failed because the store is out of memory.
    OutOfMemory = 2,
    /// The server shed this request at placement time because a queue
    /// sat past its overload watermark. Nothing was executed or stored;
    /// the client should back off before retrying. Large requests are
    /// shed first — the size-aware insight inverted to protect the
    /// small-class tail under overload.
    Overloaded = 3,
}

impl ReplyStatus {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => ReplyStatus::Ok,
            1 => ReplyStatus::NotFound,
            2 => ReplyStatus::OutOfMemory,
            3 => ReplyStatus::Overloaded,
            _ => return None,
        })
    }
}

/// Flag bit in a `PutRequest`'s status byte (always zero before TTLs
/// existed): when set, an 8-byte big-endian TTL in milliseconds trails
/// the value. Old decoders never read a request's status byte, and old
/// encoders always write it as zero, so the extension is
/// back-compatible in both directions.
pub const PUT_TTL_FLAG: u8 = 0x80;

/// Length of the trailing TTL field a [`PUT_TTL_FLAG`]-carrying
/// `PutRequest` appends after its value.
pub const PUT_TTL_TAIL_LEN: usize = 8;

/// Message body variants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Body {
    /// GET request for `key`.
    Get {
        /// The requested key.
        key: u64,
    },
    /// PUT request storing `value` under `key`. The value length on the
    /// wire is the "size of the item that is being written" the paper
    /// says PUT requests carry, letting the receiving core classify the
    /// request as small or large without a lookup.
    Put {
        /// The key to write.
        key: u64,
        /// The value to store.
        value: Bytes,
        /// Per-key time-to-live in milliseconds; `0` means the key never
        /// expires (and nothing extra goes on the wire).
        ttl_ms: u64,
    },
    /// DELETE request for `key`.
    Delete {
        /// The key to delete.
        key: u64,
    },
    /// Reply to a GET.
    GetReply {
        /// Outcome.
        status: ReplyStatus,
        /// Echoed key.
        key: u64,
        /// The value, empty unless `status == Ok`.
        value: Bytes,
    },
    /// Reply to a PUT.
    PutReply {
        /// Outcome.
        status: ReplyStatus,
        /// Echoed key.
        key: u64,
    },
    /// Reply to a DELETE.
    DeleteReply {
        /// Outcome.
        status: ReplyStatus,
        /// Echoed key.
        key: u64,
    },
}

impl Body {
    /// The wire kind of this body.
    pub fn kind(&self) -> OpKind {
        match self {
            Body::Get { .. } => OpKind::GetRequest,
            Body::Put { .. } => OpKind::PutRequest,
            Body::Delete { .. } => OpKind::DeleteRequest,
            Body::GetReply { .. } => OpKind::GetReply,
            Body::PutReply { .. } => OpKind::PutReply,
            Body::DeleteReply { .. } => OpKind::DeleteReply,
        }
    }

    /// The key this message refers to.
    pub fn key(&self) -> u64 {
        match self {
            Body::Get { key }
            | Body::Put { key, .. }
            | Body::Delete { key }
            | Body::GetReply { key, .. }
            | Body::PutReply { key, .. }
            | Body::DeleteReply { key, .. } => *key,
        }
    }
}

/// A complete application message: addressing/timing header plus body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Client identifier (maps to a client thread; also used as the
    /// reply destination).
    pub client_id: u16,
    /// Client-assigned request identifier, echoed on the reply.
    pub request_id: u64,
    /// Client send timestamp (ns), echoed on the reply for end-to-end
    /// latency measurement.
    pub client_ts_ns: u64,
    /// The operation.
    pub body: Body,
}

/// Fixed part of the encoded message: kind(1) + status(1) + client_id(2)
/// + request_id(8) + client_ts(8) + key(8) + value_len(4).
pub const MSG_HEADER_LEN: usize = 32;

impl Message {
    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        MSG_HEADER_LEN + self.value_len() + self.ttl_tail().map_or(0, |t| t.len())
    }

    /// The trailing TTL field, if this is a PUT carrying one.
    fn ttl_tail(&self) -> Option<[u8; PUT_TTL_TAIL_LEN]> {
        match &self.body {
            Body::Put { ttl_ms, .. } if *ttl_ms > 0 => Some(ttl_ms.to_be_bytes()),
            _ => None,
        }
    }

    /// Length of the value payload carried (0 for value-less messages).
    pub fn value_len(&self) -> usize {
        match &self.body {
            Body::Put { value, .. } | Body::GetReply { value, .. } => value.len(),
            _ => 0,
        }
    }

    /// Writes the fixed 32-byte header ([`MSG_HEADER_LEN`]) into `buf`
    /// and returns the value payload, if this message carries one. The
    /// single source of truth both [`Message::encode`] and
    /// [`Message::encode_frame`] serialize through, so the contiguous
    /// and scatter-gather wire images can never drift.
    fn encode_header<B: BufMut>(&self, buf: &mut B) -> Option<&Bytes> {
        let (status, key, value): (u8, u64, Option<&Bytes>) = match &self.body {
            Body::Get { key } => (0, *key, None),
            Body::Put { key, value, ttl_ms } => {
                let flags = if *ttl_ms > 0 { PUT_TTL_FLAG } else { 0 };
                (flags, *key, Some(value))
            }
            Body::Delete { key } => (0, *key, None),
            Body::GetReply { status, key, value } => (*status as u8, *key, Some(value)),
            Body::PutReply { status, key } => (*status as u8, *key, None),
            Body::DeleteReply { status, key } => (*status as u8, *key, None),
        };
        buf.put_u8(self.body.kind() as u8);
        buf.put_u8(status);
        buf.put_u16(self.client_id);
        buf.put_u64(self.request_id);
        buf.put_u64(self.client_ts_ns);
        buf.put_u64(key);
        buf.put_u32(value.map_or(0, |v| v.len() as u32));
        value.filter(|v| !v.is_empty())
    }

    /// Serializes the message to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        if let Some(value) = self.encode_header(&mut buf) {
            buf.put_slice(value);
        }
        if let Some(tail) = self.ttl_tail() {
            buf.put_slice(&tail);
        }
        buf.freeze()
    }

    /// Serializes the message as a scatter-gather [`crate::TxFrame`]:
    /// the 32-byte header is written into the frame's inline region and
    /// the value (if any) is *appended as a refcounted segment* — the
    /// value bytes are never copied. The frame's logical byte stream is
    /// byte-identical to [`Message::encode`] (property-tested), so the
    /// two paths can never drift on the wire.
    pub fn encode_frame(&self) -> crate::TxFrame {
        let mut frame = crate::TxFrame::new();
        if let Some(value) = self.encode_header(&mut frame) {
            frame.push_segment(value.clone());
        }
        if let Some(tail) = self.ttl_tail() {
            // 8 bytes; a copy here is cheaper than a segment descriptor.
            frame.push_segment(Bytes::copy_from_slice(&tail));
        }
        debug_assert_eq!(frame.len(), self.encoded_len());
        frame
    }

    /// Parses a message from `data`. Fails on truncation, unknown kinds
    /// or inconsistent lengths.
    pub fn decode(data: Bytes) -> Option<Message> {
        if data.len() < MSG_HEADER_LEN {
            return None;
        }
        let mut header = [0u8; MSG_HEADER_LEN];
        header.copy_from_slice(&data[..MSG_HEADER_LEN]);
        Self::decode_streamed(&header, data.slice(MSG_HEADER_LEN..))
    }

    /// Parses a message whose fixed header and value arrived in
    /// *separate* buffers — the streaming-reassembly path, where
    /// fragment payloads were written straight into a value sink and no
    /// contiguous header+value image ever exists. Validation is
    /// identical to [`Message::decode`] ([`Message::decode`] is this
    /// function applied to a split of its input), including the
    /// requirement that `value.len()` match the header's value-length
    /// field.
    pub fn decode_streamed(header: &[u8; MSG_HEADER_LEN], value: Bytes) -> Option<Message> {
        let mut h = &header[..];
        let kind = OpKind::from_u8(h.get_u8())?;
        let status_raw = h.get_u8();
        let client_id = h.get_u16();
        let request_id = h.get_u64();
        let client_ts_ns = h.get_u64();
        let key = h.get_u64();
        let value_len = h.get_u32() as usize;
        // A flagged PUT carries its TTL in a fixed tail after the value
        // (kept out of value_len so size-based classification and
        // streaming reservation sizing see the stored bytes only).
        let (value, ttl_ms) = if kind == OpKind::PutRequest && status_raw & PUT_TTL_FLAG != 0 {
            if value.len() != value_len + PUT_TTL_TAIL_LEN {
                return None;
            }
            let tail: [u8; PUT_TTL_TAIL_LEN] = value[value_len..].try_into().ok()?;
            (value.slice(..value_len), u64::from_be_bytes(tail))
        } else {
            if value.len() != value_len {
                return None;
            }
            (value, 0)
        };
        let body = match kind {
            OpKind::GetRequest => Body::Get { key },
            OpKind::PutRequest => Body::Put { key, value, ttl_ms },
            OpKind::DeleteRequest => Body::Delete { key },
            OpKind::GetReply => Body::GetReply {
                status: ReplyStatus::from_u8(status_raw)?,
                key,
                value,
            },
            OpKind::PutReply => Body::PutReply {
                status: ReplyStatus::from_u8(status_raw)?,
                key,
            },
            OpKind::DeleteReply => Body::DeleteReply {
                status: ReplyStatus::from_u8(status_raw)?,
                key,
            },
        };
        Some(Message {
            client_id,
            request_id,
            client_ts_ns,
            body,
        })
    }

    /// Builds the reply message for this request with the echoed
    /// identifiers and timestamp.
    ///
    /// # Panics
    ///
    /// Panics if called on a reply.
    pub fn reply(&self, status: ReplyStatus, value: Option<Bytes>) -> Message {
        let body = match &self.body {
            Body::Get { key } => Body::GetReply {
                status,
                key: *key,
                value: value.unwrap_or_default(),
            },
            Body::Put { key, .. } => Body::PutReply { status, key: *key },
            Body::Delete { key } => Body::DeleteReply { status, key: *key },
            _ => panic!("reply() called on a reply message"),
        };
        Message {
            client_id: self.client_id,
            request_id: self.request_id,
            client_ts_ns: self.client_ts_ns,
            body,
        }
    }

    /// Number of network packets this message occupies on the wire
    /// (the paper's cost function; see [`crate::packets_for_payload`]).
    pub fn wire_packets(&self) -> u32 {
        crate::packets_for_payload(self.encoded_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_put(len: usize) -> Message {
        Message {
            client_id: 7,
            request_id: 42,
            client_ts_ns: 123_456_789,
            body: Body::Put {
                key: 0xDEADBEEF,
                value: Bytes::from(vec![0xAB; len]),
                ttl_ms: 0,
            },
        }
    }

    #[test]
    fn get_roundtrip() {
        let m = Message {
            client_id: 1,
            request_id: 2,
            client_ts_ns: 3,
            body: Body::Get { key: 99 },
        };
        let enc = m.encode();
        assert_eq!(enc.len(), MSG_HEADER_LEN);
        assert_eq!(Message::decode(enc).unwrap(), m);
    }

    #[test]
    fn put_roundtrip_with_value() {
        let m = sample_put(1000);
        let enc = m.encode();
        assert_eq!(enc.len(), MSG_HEADER_LEN + 1000);
        assert_eq!(Message::decode(enc).unwrap(), m);
    }

    #[test]
    fn put_with_ttl_roundtrips_and_flags() {
        let mut m = sample_put(100);
        let Body::Put { ttl_ms, .. } = &mut m.body else {
            unreachable!()
        };
        *ttl_ms = 30_000;
        let enc = m.encode();
        assert_eq!(enc.len(), MSG_HEADER_LEN + 100 + PUT_TTL_TAIL_LEN);
        assert_eq!(enc[1], PUT_TTL_FLAG, "status byte carries the flag");
        assert_eq!(
            u32::from_be_bytes(enc[28..32].try_into().unwrap()),
            100,
            "value_len excludes the TTL tail"
        );
        let dec = Message::decode(enc.clone()).unwrap();
        assert_eq!(dec, m);
        // The scatter-gather frame is byte-identical.
        assert_eq!(&m.encode_frame().to_contiguous().0[..], &enc[..]);
        // A flagged PUT whose tail is missing is rejected.
        assert!(Message::decode(enc.slice(..enc.len() - 1)).is_none());
    }

    #[test]
    fn ttl_free_put_is_byte_identical_to_legacy() {
        // ttl_ms == 0 must not change a single wire byte, so old
        // decoders keep working against new encoders.
        let m = sample_put(64);
        let enc = m.encode();
        assert_eq!(enc.len(), MSG_HEADER_LEN + 64);
        assert_eq!(enc[1], 0, "no flag bit");
    }

    #[test]
    fn reply_echoes_identifiers() {
        let req = sample_put(10);
        let rep = req.reply(ReplyStatus::Ok, None);
        assert_eq!(rep.client_id, req.client_id);
        assert_eq!(rep.request_id, req.request_id);
        assert_eq!(rep.client_ts_ns, req.client_ts_ns);
        assert_eq!(rep.body.kind(), OpKind::PutReply);
        assert_eq!(rep.body.key(), req.body.key());
    }

    #[test]
    fn get_reply_carries_value() {
        let req = Message {
            client_id: 1,
            request_id: 2,
            client_ts_ns: 3,
            body: Body::Get { key: 5 },
        };
        let rep = req.reply(ReplyStatus::Ok, Some(Bytes::from_static(b"hello")));
        let enc = rep.encode();
        let dec = Message::decode(enc).unwrap();
        match dec.body {
            Body::GetReply { status, key, value } => {
                assert_eq!(status, ReplyStatus::Ok);
                assert_eq!(key, 5);
                assert_eq!(&value[..], b"hello");
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn streamed_decode_matches_contiguous() {
        let req = Message {
            client_id: 1,
            request_id: 2,
            client_ts_ns: 3,
            body: Body::Get { key: 5 },
        };
        let rep = req.reply(ReplyStatus::Ok, Some(Bytes::from(vec![0x5A; 777])));
        let enc = rep.encode();
        let mut header = [0u8; MSG_HEADER_LEN];
        header.copy_from_slice(&enc[..MSG_HEADER_LEN]);
        let streamed = Message::decode_streamed(&header, enc.slice(MSG_HEADER_LEN..)).unwrap();
        assert_eq!(streamed, Message::decode(enc).unwrap());
        // A value shorter than the header claims is rejected.
        assert!(Message::decode_streamed(&header, Bytes::from(vec![0u8; 776])).is_none());
    }

    #[test]
    fn overloaded_status_roundtrips() {
        let req = sample_put(16);
        let rep = req.reply(ReplyStatus::Overloaded, None);
        let enc = rep.encode();
        assert_eq!(enc[1], 3, "Overloaded is status code 3 on the wire");
        match Message::decode(enc).unwrap().body {
            Body::PutReply { status, .. } => assert_eq!(status, ReplyStatus::Overloaded),
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn truncated_rejected() {
        let enc = sample_put(100).encode();
        let truncated = enc.slice(0..enc.len() - 1);
        assert!(Message::decode(truncated).is_none());
        assert!(Message::decode(enc.slice(0..10)).is_none());
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut raw = sample_put(0).encode().to_vec();
        raw[0] = 200;
        assert!(Message::decode(Bytes::from(raw)).is_none());
    }

    #[test]
    fn wire_packets_matches_cost_function() {
        assert_eq!(sample_put(100).wire_packets(), 1);
        let large = sample_put(500_000);
        assert_eq!(
            large.wire_packets(),
            crate::packets_for_payload(MSG_HEADER_LEN + 500_000)
        );
        assert!(large.wire_packets() > 300);
    }

    #[test]
    #[should_panic(expected = "reply() called on a reply")]
    fn reply_to_reply_panics() {
        let req = sample_put(0);
        let rep = req.reply(ReplyStatus::Ok, None);
        let _ = rep.reply(ReplyStatus::Ok, None);
    }
}
