//! A minimal IPv4 header.
//!
//! Only the fields the Minos datapath needs are modelled (no options, no
//! IP-level fragmentation — fragmentation happens at the UDP layer per the
//! paper). The header checksum is computed and verified for realism and
//! so that the NIC's fault injector can corrupt packets detectably.

use crate::checksum::{internet_checksum, verify};
use bytes::{Buf, BufMut};

/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

/// A fixed-size (20-byte) IPv4 header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address (host order).
    pub src: u32,
    /// Destination address (host order).
    pub dst: u32,
    /// Payload protocol; always [`PROTO_UDP`] in this stack.
    pub protocol: u8,
    /// Time to live.
    pub ttl: u8,
    /// Total length: header + payload, in bytes.
    pub total_len: u16,
}

impl Ipv4Header {
    /// Encoded size in bytes.
    pub const LEN: usize = 20;

    /// Creates a UDP-carrying header with the default TTL of 64.
    pub fn udp(src: u32, dst: u32, payload_len: usize) -> Self {
        let total = Self::LEN + payload_len;
        assert!(total <= u16::MAX as usize, "IP packet too large: {total}");
        Ipv4Header {
            src,
            dst,
            protocol: PROTO_UDP,
            ttl: 64,
            total_len: total as u16,
        }
    }

    /// Appends the encoded header (with checksum) to `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        let mut raw = [0u8; Self::LEN];
        raw[0] = 0x45; // version 4, IHL 5
        raw[1] = 0; // DSCP/ECN
        raw[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        // identification (4..6) and flags/fragment offset (6..8) unused:
        // UDP-level fragmentation only.
        raw[8] = self.ttl;
        raw[9] = self.protocol;
        // checksum (10..12) computed below
        raw[12..16].copy_from_slice(&self.src.to_be_bytes());
        raw[16..20].copy_from_slice(&self.dst.to_be_bytes());
        let ck = internet_checksum(&raw);
        raw[10..12].copy_from_slice(&ck.to_be_bytes());
        buf.put_slice(&raw);
    }

    /// Decodes and checksum-verifies a header from the front of `buf`.
    pub fn decode<B: Buf>(buf: &mut B) -> Option<Self> {
        if buf.remaining() < Self::LEN {
            return None;
        }
        let mut raw = [0u8; Self::LEN];
        buf.copy_to_slice(&mut raw);
        if raw[0] != 0x45 || !verify(&raw) {
            return None;
        }
        Some(Ipv4Header {
            src: u32::from_be_bytes(raw[12..16].try_into().unwrap()),
            dst: u32::from_be_bytes(raw[16..20].try_into().unwrap()),
            protocol: raw[9],
            ttl: raw[8],
            total_len: u16::from_be_bytes(raw[2..4].try_into().unwrap()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn roundtrip() {
        let h = Ipv4Header::udp(0x0A000001, 0x0A000002, 100);
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), Ipv4Header::LEN);
        let mut rd = buf.freeze();
        let parsed = Ipv4Header::decode(&mut rd).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(parsed.total_len as usize, Ipv4Header::LEN + 100);
    }

    #[test]
    fn corrupted_header_rejected() {
        let h = Ipv4Header::udp(1, 2, 64);
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let mut raw = buf.to_vec();
        raw[14] ^= 0x01; // flip a bit in the source address
        let mut rd = bytes::Bytes::from(raw);
        assert!(Ipv4Header::decode(&mut rd).is_none());
    }

    #[test]
    fn short_buffer_rejected() {
        let mut rd = bytes::Bytes::from_static(&[0x45, 0, 0]);
        assert!(Ipv4Header::decode(&mut rd).is_none());
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_payload_panics() {
        let _ = Ipv4Header::udp(1, 2, 70_000);
    }
}
