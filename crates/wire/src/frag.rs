//! UDP-level fragmentation and reassembly.
//!
//! "Requests that span multiple frames (large PUT requests and large GET
//! replies) are fragmented and defragmented at the UDP level" (paper
//! §4.1). Every UDP payload in this stack starts with a 16-byte
//! [`FragHeader`]; messages that fit one MTU are sent as a single
//! fragment (`count == 1`), larger messages are split into
//! [`crate::MAX_FRAG_CHUNK`]-byte chunks.
//!
//! The [`Reassembler`] tolerates out-of-order and duplicated fragments and
//! bounds its memory: at most `max_partial` in-flight messages are kept,
//! evicting the stalest entry when full (datagram loss is the client's
//! problem — §4.1: "Retransmission is handled by the client").

use crate::txframe::TxFrame;
use crate::{MAX_FRAG_CHUNK, MTU};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::HashMap;

/// Encoded size of [`FragHeader`].
pub const FRAG_HEADER_LEN: usize = 16;

/// Per-fragment header prefixed to every UDP payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragHeader {
    /// Message identifier, unique per sender.
    pub msg_id: u64,
    /// Fragment index in `[0, count)`.
    pub index: u16,
    /// Total number of fragments of the message.
    pub count: u16,
    /// Total message length in bytes (all chunks concatenated).
    pub msg_len: u32,
}

impl FragHeader {
    /// Appends the encoded header to `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u64(self.msg_id);
        buf.put_u16(self.index);
        buf.put_u16(self.count);
        buf.put_u32(self.msg_len);
    }

    /// Decodes a header from the front of `buf`.
    pub fn decode<B: Buf>(buf: &mut B) -> Option<Self> {
        if buf.remaining() < FRAG_HEADER_LEN {
            return None;
        }
        let h = FragHeader {
            msg_id: buf.get_u64(),
            index: buf.get_u16(),
            count: buf.get_u16(),
            msg_len: buf.get_u32(),
        };
        (h.count > 0 && h.index < h.count).then_some(h)
    }
}

/// Splits messages into MTU-sized fragments, assigning message ids.
#[derive(Debug)]
pub struct Fragmenter {
    next_msg_id: u64,
}

impl Fragmenter {
    /// Creates a fragmenter whose message ids start at `seed` (use a
    /// distinct seed space per sender if ids must be globally unique —
    /// the reassembler keys on (source, msg_id), so per-sender uniqueness
    /// suffices).
    pub fn new(seed: u64) -> Self {
        Self { next_msg_id: seed }
    }

    /// Splits `message` into UDP payloads (frag header + chunk), each at
    /// most [`crate::MAX_UDP_PAYLOAD`] bytes.
    pub fn fragment(&mut self, message: &[u8]) -> Vec<Bytes> {
        let msg_id = self.next_msg_id;
        self.next_msg_id = self.next_msg_id.wrapping_add(1);
        fragment_with_id(msg_id, message)
    }

    /// Splits a scatter-gather `message` frame into per-datagram
    /// [`TxFrame`]s without copying any segment bytes; see
    /// [`fragment_frame_with_id`].
    pub fn fragment_frame(&mut self, message: &TxFrame) -> Vec<TxFrame> {
        let msg_id = self.next_msg_id;
        self.next_msg_id = self.next_msg_id.wrapping_add(1);
        fragment_frame_with_id(msg_id, message)
    }

    /// Number of fragments `len` message bytes will produce.
    pub fn fragment_count(len: usize) -> u32 {
        crate::packets_for_payload(len)
    }
}

/// Splits `message` into fragments with an explicit message id.
pub fn fragment_with_id(msg_id: u64, message: &[u8]) -> Vec<Bytes> {
    let count = crate::packets_for_payload(message.len()) as usize;
    assert!(count <= u16::MAX as usize, "message too large to fragment");
    let mut out = Vec::with_capacity(count);
    for index in 0..count {
        let start = index * MAX_FRAG_CHUNK;
        let end = ((index + 1) * MAX_FRAG_CHUNK).min(message.len());
        let chunk = &message[start..end];
        let mut buf = BytesMut::with_capacity(FRAG_HEADER_LEN + chunk.len());
        FragHeader {
            msg_id,
            index: index as u16,
            count: count as u16,
            msg_len: message.len() as u32,
        }
        .encode(&mut buf);
        buf.put_slice(chunk);
        debug_assert!(buf.len() <= MTU);
        out.push(buf.freeze());
    }
    out
}

/// Splits a scatter-gather `message` frame into per-datagram
/// [`TxFrame`]s with an explicit message id — the zero-copy analog of
/// [`fragment_with_id`]: every fragment carries its 16-byte
/// [`FragHeader`] plus the overlapping slice of the message's inline
/// header region in *its* inline region, while the overlapping portions
/// of the message's payload segments are attached as `O(1)`
/// [`Bytes::slice`] views. Gathering each output frame yields exactly
/// the datagrams `fragment_with_id` would produce from the gathered
/// message (property-tested), with zero segment-byte copies.
///
/// # Panics
///
/// Panics if the message's inline region cannot fit in a fragment's
/// inline region behind the fragment header (headers deeper than
/// [`crate::TX_INLINE_CAP`]` - `[`FRAG_HEADER_LEN`] bytes), or if the
/// message needs more than `u16::MAX` fragments.
pub fn fragment_frame_with_id(msg_id: u64, message: &TxFrame) -> Vec<TxFrame> {
    let total = message.len();
    let count = crate::packets_for_payload(total) as usize;
    assert!(count <= u16::MAX as usize, "message too large to fragment");
    let inline = message.inline();
    assert!(
        FRAG_HEADER_LEN + inline.len() <= crate::TX_INLINE_CAP,
        "message inline header too deep to fragment"
    );
    let mut out = Vec::with_capacity(count);
    for index in 0..count {
        let start = index * MAX_FRAG_CHUNK;
        let end = ((index + 1) * MAX_FRAG_CHUNK).min(total);
        let mut frag = TxFrame::new();
        FragHeader {
            msg_id,
            index: index as u16,
            count: count as u16,
            msg_len: total as u32,
        }
        .encode(&mut frag);
        // Walk the message's regions in logical order, taking each
        // region's overlap with this chunk's [start, end) window. The
        // inline region sits at the logical front, so its overlap (if
        // any) always lands before any segment slice.
        let mut at = 0usize;
        let overlap = |at: usize, len: usize| {
            let lo = start.max(at).min(at + len);
            let hi = end.max(at).min(at + len);
            (lo - at, hi - at)
        };
        let (lo, hi) = overlap(at, inline.len());
        if lo < hi {
            frag.put_slice(&inline[lo..hi]);
        }
        at += inline.len();
        for seg in message.segments() {
            let (lo, hi) = overlap(at, seg.len());
            if lo < hi {
                frag.push_segment(seg.slice(lo..hi));
            }
            at += seg.len();
        }
        debug_assert_eq!(frag.len(), FRAG_HEADER_LEN + (end - start));
        debug_assert!(frag.len() <= crate::MAX_UDP_PAYLOAD);
        out.push(frag);
    }
    out
}

/// A partially reassembled message.
#[derive(Debug)]
struct Partial {
    chunks: Vec<Option<Bytes>>,
    received: usize,
    msg_len: u32,
    last_touch: u64,
}

/// Outcome of feeding one fragment to the [`Reassembler`].
#[derive(Debug, PartialEq, Eq)]
pub enum Reassembly {
    /// The fragment completed a message; here it is.
    Complete(Bytes),
    /// More fragments are needed.
    Incomplete,
    /// The fragment was malformed or inconsistent and was dropped.
    Rejected,
    /// The fragment duplicated one already received and was ignored.
    Duplicate,
}

/// Reassembles fragmented messages, keyed by `(source, msg_id)`.
#[derive(Debug)]
pub struct Reassembler {
    partials: HashMap<(u64, u64), Partial>,
    max_partial: usize,
    clock: u64,
    /// Completed-message count (observability).
    pub completed: u64,
    /// Evicted-partial count (observability).
    pub evicted: u64,
}

impl Reassembler {
    /// Creates a reassembler holding at most `max_partial` in-flight
    /// messages.
    pub fn new(max_partial: usize) -> Self {
        assert!(max_partial > 0);
        Self {
            partials: HashMap::new(),
            max_partial,
            clock: 0,
            completed: 0,
            evicted: 0,
        }
    }

    /// Feeds one UDP payload (frag header + chunk) from `source`.
    pub fn push(&mut self, source: u64, payload: Bytes) -> Reassembly {
        self.clock += 1;
        let mut rd = payload;
        let Some(header) = FragHeader::decode(&mut rd) else {
            return Reassembly::Rejected;
        };
        // A count inconsistent with msg_len can only come from a forged
        // or corrupted header; honoring it would buffer up to
        // count x MAX_FRAG_CHUNK bytes for a message that can never
        // decode.
        if u32::from(header.count) != crate::packets_for_payload(header.msg_len as usize) {
            return Reassembly::Rejected;
        }
        let chunk = rd;

        // Validate chunk length against its position.
        let expected = expected_chunk_len(&header);
        if chunk.len() != expected {
            return Reassembly::Rejected;
        }

        if header.count == 1 {
            self.completed += 1;
            return Reassembly::Complete(chunk);
        }

        let key = (source, header.msg_id);
        if !self.partials.contains_key(&key) && self.partials.len() >= self.max_partial {
            self.evict_stalest();
        }
        let partial = self.partials.entry(key).or_insert_with(|| Partial {
            chunks: vec![None; header.count as usize],
            received: 0,
            msg_len: header.msg_len,
            last_touch: 0,
        });
        if partial.chunks.len() != header.count as usize || partial.msg_len != header.msg_len {
            // Inconsistent with earlier fragments of the same id: drop
            // the whole partial, it cannot complete correctly.
            self.partials.remove(&key);
            return Reassembly::Rejected;
        }
        partial.last_touch = self.clock;
        let slot = &mut partial.chunks[header.index as usize];
        if slot.is_some() {
            return Reassembly::Duplicate;
        }
        *slot = Some(chunk);
        partial.received += 1;
        if partial.received == partial.chunks.len() {
            let partial = self.partials.remove(&key).expect("present");
            let mut out = BytesMut::with_capacity(partial.msg_len as usize);
            for c in partial.chunks {
                out.put_slice(&c.expect("all chunks received"));
            }
            self.completed += 1;
            return Reassembly::Complete(out.freeze());
        }
        Reassembly::Incomplete
    }

    /// Number of in-flight partial messages.
    pub fn pending(&self) -> usize {
        self.partials.len()
    }

    fn evict_stalest(&mut self) {
        if let Some(key) = self
            .partials
            .iter()
            .min_by_key(|(_, p)| p.last_touch)
            .map(|(k, _)| *k)
        {
            self.partials.remove(&key);
            self.evicted += 1;
        }
    }
}

fn expected_chunk_len(h: &FragHeader) -> usize {
    let len = h.msg_len as usize;
    let start = h.index as usize * MAX_FRAG_CHUNK;
    if h.index + 1 == h.count {
        len.saturating_sub(start)
    } else {
        MAX_FRAG_CHUNK
    }
}

/// A destination for streamed fragment chunks: the sink a
/// [`StreamingReassembler`] copies each fragment's payload into, at the
/// chunk's final message offset. Implementors are typically writable
/// reservations in their *final* resting place (a store mempool block),
/// which is what makes the streaming path one-copy.
pub trait FragmentWriter {
    /// Copies `chunk` to message offset `offset`. Offsets of distinct
    /// calls never overlap and jointly cover `[0, msg_len)` exactly once
    /// by the time the reassembler reports completion.
    fn write_at(&mut self, offset: usize, chunk: &[u8]);
}

/// In-flight state of one streamed message.
#[derive(Debug)]
struct StreamingPartial<W> {
    writer: W,
    /// Bitmap of received fragment indices.
    seen: Box<[u64]>,
    received: u16,
    count: u16,
    msg_len: u32,
    /// Push-clock of the most recent fragment (capacity eviction order).
    last_touch: u64,
    /// Round of the most recent fragment (stale eviction).
    last_round: u64,
}

/// Outcome of feeding one fragment to a [`StreamingReassembler`].
#[derive(Debug)]
pub enum Streamed<W> {
    /// The fragment completed the message; the filled writer is handed
    /// back for the caller to commit.
    Complete(W),
    /// More fragments are needed; the fed fragment's chunk has been
    /// written and its buffer is already released.
    Incomplete,
    /// The fragment was malformed or inconsistent (or its writer could
    /// not be opened) and was dropped.
    Rejected,
    /// The fragment duplicated one already streamed and was ignored.
    Duplicate,
}

/// Streaming reassembly: copies each fragment's chunk directly into a
/// caller-provided [`FragmentWriter`] and drops the fragment buffer
/// immediately, instead of buffering every fragment until the message
/// completes the way [`Reassembler`] does.
///
/// Two properties follow:
///
/// * **One copy.** The chunk moves wire buffer → final destination once;
///   no intermediate contiguous reassembly buffer ever exists.
/// * **O(rx batch) buffer occupancy.** Pooled RX slots are released the
///   moment their chunk is streamed, so reassembling a large message
///   holds *zero* fragment buffers instead of `O(msg_len / MTU)` — the
///   fix for RX-pool exhaustion under concurrent large-PUT bursts.
///
/// Like [`Reassembler`], entries are keyed by `(source, msg_id)` and
/// bounded by `max_partial` with stalest-first eviction. In addition,
/// [`StreamingReassembler::advance_round`] implements round-based stale
/// eviction: a partial untouched for two completed rounds (driven by the
/// caller's clock, e.g. the server's reassembly-round timer) is dropped,
/// releasing its writer — and with it any mempool reservation the writer
/// holds — instead of stranding it forever after fragment loss.
#[derive(Debug)]
pub struct StreamingReassembler<W> {
    partials: HashMap<(u64, u64), StreamingPartial<W>>,
    max_partial: usize,
    clock: u64,
    round: u64,
    /// Completed-message count (observability).
    pub completed: u64,
    /// Evicted-partial count, capacity and staleness combined
    /// (observability).
    pub evicted: u64,
}

impl<W: FragmentWriter> StreamingReassembler<W> {
    /// Creates a streaming reassembler holding at most `max_partial`
    /// in-flight messages.
    pub fn new(max_partial: usize) -> Self {
        assert!(max_partial > 0);
        Self {
            partials: HashMap::new(),
            max_partial,
            clock: 0,
            round: 0,
            completed: 0,
            evicted: 0,
        }
    }

    /// Feeds one UDP payload (frag header + chunk) from `source`,
    /// streaming its chunk into the message's writer. `open` is invoked
    /// exactly once per message, on its first-seen fragment (which may
    /// be any index — the total length is in every fragment header), to
    /// allocate the writer; returning `None` rejects the message.
    pub fn push(
        &mut self,
        source: u64,
        payload: Bytes,
        open: impl FnOnce(&FragHeader) -> Option<W>,
    ) -> Streamed<W> {
        self.clock += 1;
        let mut rd = payload;
        let Some(header) = FragHeader::decode(&mut rd) else {
            return Streamed::Rejected;
        };
        // The writer is sized from msg_len while chunk placement comes
        // from index/count; a header whose count disagrees with its
        // msg_len could therefore direct a full-size chunk past the end
        // of a tiny writer. Buffering reassembly only produced garbage
        // for the decoder from such forgeries — streaming must reject
        // them outright.
        if u32::from(header.count) != crate::packets_for_payload(header.msg_len as usize) {
            return Streamed::Rejected;
        }
        let chunk = rd;
        if chunk.len() != expected_chunk_len(&header) {
            return Streamed::Rejected;
        }

        if header.count == 1 {
            let Some(mut writer) = open(&header) else {
                return Streamed::Rejected;
            };
            writer.write_at(0, &chunk);
            self.completed += 1;
            return Streamed::Complete(writer);
        }

        let key = (source, header.msg_id);
        // Hot path — a later fragment of an in-flight message: one map
        // probe, chunk streamed, done.
        if let Some(partial) = self.partials.get_mut(&key) {
            if partial.count != header.count || partial.msg_len != header.msg_len {
                // Inconsistent with earlier fragments of the same id:
                // drop the whole partial, it cannot complete correctly.
                // This releases a live reservation, so it counts as an
                // eviction — the gauge must see every dropped partial.
                self.partials.remove(&key);
                self.evicted += 1;
                return Streamed::Rejected;
            }
            partial.last_touch = self.clock;
            partial.last_round = self.round;
            let (word, bit) = (header.index as usize / 64, header.index as usize % 64);
            if partial.seen[word] & (1 << bit) != 0 {
                return Streamed::Duplicate;
            }
            partial.seen[word] |= 1 << bit;
            partial.received += 1;
            partial
                .writer
                .write_at(header.index as usize * MAX_FRAG_CHUNK, &chunk);
            // `chunk` (the only reference into the fragment buffer)
            // drops here: RX-pool occupancy never accumulates across
            // fragments.
            if partial.received == partial.count {
                let partial = self.partials.remove(&key).expect("present");
                self.completed += 1;
                return Streamed::Complete(partial.writer);
            }
            return Streamed::Incomplete;
        }

        // First-seen fragment. Open the writer *before* making room: a
        // fragment that ends up rejected must never cost a live partial
        // its slot (and its resources) — that would let garbage
        // datagrams evict legitimate in-flight reassemblies for free.
        let Some(mut writer) = open(&header) else {
            return Streamed::Rejected;
        };
        writer.write_at(header.index as usize * MAX_FRAG_CHUNK, &chunk);
        drop(chunk);
        if self.partials.len() >= self.max_partial {
            self.evict_stalest();
        }
        let words = (header.count as usize).div_ceil(64);
        let mut seen = vec![0u64; words].into_boxed_slice();
        seen[header.index as usize / 64] |= 1 << (header.index as usize % 64);
        self.partials.insert(
            key,
            StreamingPartial {
                writer,
                seen,
                received: 1,
                count: header.count,
                msg_len: header.msg_len,
                last_touch: self.clock,
                last_round: self.round,
            },
        );
        Streamed::Incomplete
    }

    /// Number of in-flight partial messages.
    pub fn pending(&self) -> usize {
        self.partials.len()
    }

    /// Closes the current reassembly round and evicts every partial
    /// whose latest fragment arrived two or more completed rounds ago
    /// (i.e. it survived at least one full round untouched — a lost
    /// fragment, since in-order delivery completes messages within a
    /// round at any realistic round length). Returns how many were
    /// evicted; their writers are dropped, which releases whatever
    /// resources (mempool reservations) they held.
    pub fn advance_round(&mut self) -> usize {
        self.round += 1;
        let round = self.round;
        let before = self.partials.len();
        self.partials.retain(|_, p| round - p.last_round < 2);
        let evicted = before - self.partials.len();
        self.evicted += evicted as u64;
        evicted
    }

    fn evict_stalest(&mut self) {
        if let Some(key) = self
            .partials
            .iter()
            .min_by_key(|(_, p)| p.last_touch)
            .map(|(k, _)| *k)
        {
            self.partials.remove(&key);
            self.evicted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn message(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn single_fragment_roundtrip() {
        let msg = message(100);
        let frags = fragment_with_id(1, &msg);
        assert_eq!(frags.len(), 1);
        let mut r = Reassembler::new(8);
        match r.push(0, frags[0].clone()) {
            Reassembly::Complete(b) => assert_eq!(&b[..], &msg[..]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_fragment_roundtrip_in_order() {
        let msg = message(MAX_FRAG_CHUNK * 3 + 17);
        let frags = fragment_with_id(9, &msg);
        assert_eq!(frags.len(), 4);
        let mut r = Reassembler::new(8);
        for (i, f) in frags.iter().enumerate() {
            match r.push(0, f.clone()) {
                Reassembly::Complete(b) => {
                    assert_eq!(i, frags.len() - 1);
                    assert_eq!(&b[..], &msg[..]);
                }
                Reassembly::Incomplete => assert!(i < frags.len() - 1),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn out_of_order_and_interleaved_sources() {
        let msg_a = message(MAX_FRAG_CHUNK * 2);
        let msg_b = message(MAX_FRAG_CHUNK + 5);
        let fa = fragment_with_id(1, &msg_a);
        let fb = fragment_with_id(1, &msg_b); // same id, different source
        let mut r = Reassembler::new(8);
        assert_eq!(r.push(10, fa[1].clone()), Reassembly::Incomplete);
        assert_eq!(r.push(20, fb[1].clone()), Reassembly::Incomplete);
        match r.push(20, fb[0].clone()) {
            Reassembly::Complete(b) => assert_eq!(&b[..], &msg_b[..]),
            other => panic!("unexpected {other:?}"),
        }
        match r.push(10, fa[0].clone()) {
            Reassembly::Complete(b) => assert_eq!(&b[..], &msg_a[..]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicates_ignored() {
        let msg = message(MAX_FRAG_CHUNK * 2);
        let frags = fragment_with_id(3, &msg);
        let mut r = Reassembler::new(8);
        assert_eq!(r.push(0, frags[0].clone()), Reassembly::Incomplete);
        assert_eq!(r.push(0, frags[0].clone()), Reassembly::Duplicate);
        assert!(matches!(
            r.push(0, frags[1].clone()),
            Reassembly::Complete(_)
        ));
    }

    #[test]
    fn malformed_rejected() {
        let mut r = Reassembler::new(8);
        // Too short for a header.
        assert_eq!(
            r.push(0, Bytes::from_static(&[1, 2, 3])),
            Reassembly::Rejected
        );
        // index >= count.
        let mut buf = BytesMut::new();
        FragHeader {
            msg_id: 1,
            index: 0,
            count: 1,
            msg_len: 4,
        }
        .encode(&mut buf);
        buf.put_slice(b"toolong!");
        assert_eq!(r.push(0, buf.freeze()), Reassembly::Rejected);
    }

    #[test]
    fn capacity_bound_evicts_stalest() {
        let mut r = Reassembler::new(2);
        let m = message(MAX_FRAG_CHUNK * 2);
        // Three concurrent partials from three sources; capacity 2.
        for src in 0..3u64 {
            let frags = fragment_with_id(src, &m);
            assert_eq!(r.push(src, frags[0].clone()), Reassembly::Incomplete);
        }
        assert_eq!(r.pending(), 2);
        assert_eq!(r.evicted, 1);
        // Source 0 was stalest and got evicted: completing it now fails
        // (fragment 1 alone re-opens a partial).
        let frags = fragment_with_id(0, &m);
        assert_eq!(r.push(0, frags[1].clone()), Reassembly::Incomplete);
    }

    #[test]
    fn fragment_sizes_respect_mtu() {
        let msg = message(500_000);
        for f in fragment_with_id(0, &msg) {
            assert!(f.len() <= crate::MAX_UDP_PAYLOAD);
        }
    }

    #[test]
    fn inconsistent_geometry_rejected() {
        let msg = message(MAX_FRAG_CHUNK * 3);
        let frags = fragment_with_id(5, &msg);
        let mut r = Reassembler::new(8);
        assert_eq!(r.push(0, frags[0].clone()), Reassembly::Incomplete);
        // Forge a fragment with the same msg_id but a different count.
        let mut buf = BytesMut::new();
        FragHeader {
            msg_id: 5,
            index: 1,
            count: 2,
            msg_len: (MAX_FRAG_CHUNK * 2) as u32,
        }
        .encode(&mut buf);
        buf.put_slice(&msg[MAX_FRAG_CHUNK..2 * MAX_FRAG_CHUNK]);
        assert_eq!(r.push(0, buf.freeze()), Reassembly::Rejected);
    }

    /// A test sink recording bytes at their offsets plus open/geometry
    /// facts, standing in for a mempool reservation.
    #[derive(Debug)]
    struct VecSink {
        buf: Vec<u8>,
        written: usize,
    }

    impl VecSink {
        fn open(h: &FragHeader) -> Option<VecSink> {
            Some(VecSink {
                buf: vec![0; h.msg_len as usize],
                written: 0,
            })
        }
    }

    impl FragmentWriter for VecSink {
        fn write_at(&mut self, offset: usize, chunk: &[u8]) {
            self.buf[offset..offset + chunk.len()].copy_from_slice(chunk);
            self.written += chunk.len();
        }
    }

    #[test]
    fn streaming_single_fragment_completes_immediately() {
        let msg = message(300);
        let frags = fragment_with_id(1, &msg);
        let mut r = StreamingReassembler::new(8);
        match r.push(0, frags[0].clone(), VecSink::open) {
            Streamed::Complete(w) => {
                assert_eq!(&w.buf[..], &msg[..]);
                assert_eq!(w.written, 300);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.pending(), 0);
        assert_eq!(r.completed, 1);
    }

    #[test]
    fn streaming_reassembles_out_of_order_and_releases_fragments() {
        let msg = message(MAX_FRAG_CHUNK * 3 + 99);
        let mut frags = fragment_with_id(7, &msg);
        frags.reverse();
        let mut r = StreamingReassembler::new(8);
        let mut opened = 0;
        for (i, f) in frags.iter().enumerate() {
            let open = |h: &FragHeader| {
                opened += 1;
                VecSink::open(h)
            };
            match r.push(5, f.clone(), open) {
                Streamed::Complete(w) => {
                    assert_eq!(i, frags.len() - 1);
                    assert_eq!(&w.buf[..], &msg[..]);
                    assert_eq!(w.written, msg.len(), "each byte streamed once");
                }
                Streamed::Incomplete => assert!(i < frags.len() - 1),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(opened, 1, "the writer is opened on the first-seen fragment");
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn streaming_duplicates_do_not_rewrite() {
        let msg = message(MAX_FRAG_CHUNK * 2);
        let frags = fragment_with_id(3, &msg);
        let mut r = StreamingReassembler::new(8);
        assert!(matches!(
            r.push(0, frags[0].clone(), VecSink::open),
            Streamed::Incomplete
        ));
        assert!(matches!(
            r.push(0, frags[0].clone(), VecSink::open),
            Streamed::Duplicate
        ));
        match r.push(0, frags[1].clone(), VecSink::open) {
            Streamed::Complete(w) => {
                assert_eq!(w.written, msg.len(), "duplicate chunk not re-copied")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn streaming_rejects_malformed_and_failed_open() {
        let mut r = StreamingReassembler::<VecSink>::new(8);
        assert!(matches!(
            r.push(0, Bytes::from_static(&[1, 2, 3]), VecSink::open),
            Streamed::Rejected
        ));
        let frags = fragment_with_id(4, &message(MAX_FRAG_CHUNK * 2));
        assert!(matches!(
            r.push(0, frags[0].clone(), |_| None),
            Streamed::Rejected
        ));
        assert_eq!(r.pending(), 0, "a rejected open leaves no partial");
    }

    #[test]
    fn forged_count_msg_len_mismatch_is_rejected_not_written() {
        // count=2 with msg_len=100: a full-size first chunk would land
        // 1456 bytes in a writer sized for 100 — the reassembler must
        // reject the header before the writer ever sees a byte.
        let mut buf = BytesMut::new();
        FragHeader {
            msg_id: 9,
            index: 0,
            count: 2,
            msg_len: 100,
        }
        .encode(&mut buf);
        buf.put_slice(&[0u8; MAX_FRAG_CHUNK]);
        let forged = buf.freeze();

        let mut streaming = StreamingReassembler::<VecSink>::new(8);
        let mut opened = false;
        let result = streaming.push(0, forged.clone(), |h| {
            opened = true;
            VecSink::open(h)
        });
        assert!(matches!(result, Streamed::Rejected));
        assert!(!opened, "no writer may be opened for a forged header");
        assert_eq!(streaming.pending(), 0);

        // The buffering reassembler rejects the same forgery.
        let mut buffering = Reassembler::new(8);
        assert_eq!(buffering.push(0, forged), Reassembly::Rejected);
    }

    #[test]
    fn rejected_fragment_never_evicts_a_live_partial() {
        let m = message(MAX_FRAG_CHUNK * 2);
        let mut r = StreamingReassembler::new(1);
        let frags = fragment_with_id(1, &m);
        assert!(matches!(
            r.push(0, frags[0].clone(), VecSink::open),
            Streamed::Incomplete
        ));
        // At capacity, a fragment whose open() fails must not make room
        // for a partial that is never inserted.
        let other = fragment_with_id(2, &m);
        assert!(matches!(
            r.push(0, other[0].clone(), |_| None),
            Streamed::Rejected
        ));
        assert_eq!(r.pending(), 1);
        assert_eq!(r.evicted, 0, "the live partial survives");
        assert!(matches!(
            r.push(0, frags[1].clone(), VecSink::open),
            Streamed::Complete(_)
        ));
    }

    #[test]
    fn streaming_geometry_mismatch_drops_partial() {
        let msg = message(MAX_FRAG_CHUNK * 3);
        let frags = fragment_with_id(5, &msg);
        let mut r = StreamingReassembler::new(8);
        assert!(matches!(
            r.push(0, frags[0].clone(), VecSink::open),
            Streamed::Incomplete
        ));
        let mut buf = BytesMut::new();
        FragHeader {
            msg_id: 5,
            index: 1,
            count: 2,
            msg_len: (MAX_FRAG_CHUNK * 2) as u32,
        }
        .encode(&mut buf);
        buf.put_slice(&msg[MAX_FRAG_CHUNK..2 * MAX_FRAG_CHUNK]);
        assert!(matches!(
            r.push(0, buf.freeze(), VecSink::open),
            Streamed::Rejected
        ));
        assert_eq!(r.pending(), 0);
        assert_eq!(
            r.evicted, 1,
            "dropping a live partial (and its resources) is an eviction"
        );
    }

    #[test]
    fn streaming_capacity_bound_evicts_stalest() {
        let m = message(MAX_FRAG_CHUNK * 2);
        let mut r = StreamingReassembler::new(2);
        for src in 0..3u64 {
            let frags = fragment_with_id(src, &m);
            assert!(matches!(
                r.push(src, frags[0].clone(), VecSink::open),
                Streamed::Incomplete
            ));
        }
        assert_eq!(r.pending(), 2);
        assert_eq!(r.evicted, 1);
    }

    #[test]
    fn streaming_round_eviction_drops_only_stale_partials() {
        let m = message(MAX_FRAG_CHUNK * 2);
        let mut r = StreamingReassembler::new(8);
        let frags = fragment_with_id(1, &m);
        assert!(matches!(
            r.push(0, frags[0].clone(), VecSink::open),
            Streamed::Incomplete
        ));
        // One completed round: the partial is stale-but-grace-period.
        assert_eq!(r.advance_round(), 0);
        assert_eq!(r.pending(), 1);
        // A *fresh* partial in the new round must survive the next
        // boundary, while the old one is evicted.
        let fresh = fragment_with_id(2, &m);
        assert!(matches!(
            r.push(0, fresh[0].clone(), VecSink::open),
            Streamed::Incomplete
        ));
        assert_eq!(r.advance_round(), 1, "the round-0 partial is evicted");
        assert_eq!(r.pending(), 1);
        assert_eq!(r.evicted, 1);
        // The evicted message can no longer complete; the fresh one can.
        assert!(matches!(
            r.push(0, fresh[1].clone(), VecSink::open),
            Streamed::Complete(_)
        ));
        match r.push(0, frags[1].clone(), VecSink::open) {
            Streamed::Incomplete => {} // re-opened as a new partial
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn streaming_touch_refreshes_round() {
        // A message receiving fragments every round is never evicted no
        // matter how long it takes.
        let m = message(MAX_FRAG_CHUNK * 4);
        let frags = fragment_with_id(9, &m);
        let mut r = StreamingReassembler::new(8);
        for f in frags.iter().take(3) {
            assert!(matches!(
                r.push(0, f.clone(), VecSink::open),
                Streamed::Incomplete
            ));
            assert_eq!(r.advance_round(), 0);
        }
        assert!(matches!(
            r.push(0, frags[3].clone(), VecSink::open),
            Streamed::Complete(_)
        ));
        assert_eq!(r.evicted, 0);
    }

    #[test]
    fn fragmenter_assigns_unique_ids() {
        let mut f = Fragmenter::new(100);
        let a = f.fragment(&message(10));
        let b = f.fragment(&message(10));
        let mut ra = a[0].clone();
        let mut rb = b[0].clone();
        let ha = FragHeader::decode(&mut ra).unwrap();
        let hb = FragHeader::decode(&mut rb).unwrap();
        assert_eq!(ha.msg_id, 100);
        assert_eq!(hb.msg_id, 101);
    }
}
