//! UDP-level fragmentation and reassembly.
//!
//! "Requests that span multiple frames (large PUT requests and large GET
//! replies) are fragmented and defragmented at the UDP level" (paper
//! §4.1). Every UDP payload in this stack starts with a 16-byte
//! [`FragHeader`]; messages that fit one MTU are sent as a single
//! fragment (`count == 1`), larger messages are split into
//! [`crate::MAX_FRAG_CHUNK`]-byte chunks.
//!
//! The [`Reassembler`] tolerates out-of-order and duplicated fragments and
//! bounds its memory: at most `max_partial` in-flight messages are kept,
//! evicting the stalest entry when full (datagram loss is the client's
//! problem — §4.1: "Retransmission is handled by the client").

use crate::txframe::TxFrame;
use crate::{MAX_FRAG_CHUNK, MTU};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::HashMap;

/// Encoded size of [`FragHeader`].
pub const FRAG_HEADER_LEN: usize = 16;

/// Per-fragment header prefixed to every UDP payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragHeader {
    /// Message identifier, unique per sender.
    pub msg_id: u64,
    /// Fragment index in `[0, count)`.
    pub index: u16,
    /// Total number of fragments of the message.
    pub count: u16,
    /// Total message length in bytes (all chunks concatenated).
    pub msg_len: u32,
}

impl FragHeader {
    /// Appends the encoded header to `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u64(self.msg_id);
        buf.put_u16(self.index);
        buf.put_u16(self.count);
        buf.put_u32(self.msg_len);
    }

    /// Decodes a header from the front of `buf`.
    pub fn decode<B: Buf>(buf: &mut B) -> Option<Self> {
        if buf.remaining() < FRAG_HEADER_LEN {
            return None;
        }
        let h = FragHeader {
            msg_id: buf.get_u64(),
            index: buf.get_u16(),
            count: buf.get_u16(),
            msg_len: buf.get_u32(),
        };
        (h.count > 0 && h.index < h.count).then_some(h)
    }
}

/// Splits messages into MTU-sized fragments, assigning message ids.
#[derive(Debug)]
pub struct Fragmenter {
    next_msg_id: u64,
}

impl Fragmenter {
    /// Creates a fragmenter whose message ids start at `seed` (use a
    /// distinct seed space per sender if ids must be globally unique —
    /// the reassembler keys on (source, msg_id), so per-sender uniqueness
    /// suffices).
    pub fn new(seed: u64) -> Self {
        Self { next_msg_id: seed }
    }

    /// Splits `message` into UDP payloads (frag header + chunk), each at
    /// most [`crate::MAX_UDP_PAYLOAD`] bytes.
    pub fn fragment(&mut self, message: &[u8]) -> Vec<Bytes> {
        let msg_id = self.next_msg_id;
        self.next_msg_id = self.next_msg_id.wrapping_add(1);
        fragment_with_id(msg_id, message)
    }

    /// Splits a scatter-gather `message` frame into per-datagram
    /// [`TxFrame`]s without copying any segment bytes; see
    /// [`fragment_frame_with_id`].
    pub fn fragment_frame(&mut self, message: &TxFrame) -> Vec<TxFrame> {
        let msg_id = self.next_msg_id;
        self.next_msg_id = self.next_msg_id.wrapping_add(1);
        fragment_frame_with_id(msg_id, message)
    }

    /// Number of fragments `len` message bytes will produce.
    pub fn fragment_count(len: usize) -> u32 {
        crate::packets_for_payload(len)
    }
}

/// Splits `message` into fragments with an explicit message id.
pub fn fragment_with_id(msg_id: u64, message: &[u8]) -> Vec<Bytes> {
    let count = crate::packets_for_payload(message.len()) as usize;
    assert!(count <= u16::MAX as usize, "message too large to fragment");
    let mut out = Vec::with_capacity(count);
    for index in 0..count {
        let start = index * MAX_FRAG_CHUNK;
        let end = ((index + 1) * MAX_FRAG_CHUNK).min(message.len());
        let chunk = &message[start..end];
        let mut buf = BytesMut::with_capacity(FRAG_HEADER_LEN + chunk.len());
        FragHeader {
            msg_id,
            index: index as u16,
            count: count as u16,
            msg_len: message.len() as u32,
        }
        .encode(&mut buf);
        buf.put_slice(chunk);
        debug_assert!(buf.len() <= MTU);
        out.push(buf.freeze());
    }
    out
}

/// Splits a scatter-gather `message` frame into per-datagram
/// [`TxFrame`]s with an explicit message id — the zero-copy analog of
/// [`fragment_with_id`]: every fragment carries its 16-byte
/// [`FragHeader`] plus the overlapping slice of the message's inline
/// header region in *its* inline region, while the overlapping portions
/// of the message's payload segments are attached as `O(1)`
/// [`Bytes::slice`] views. Gathering each output frame yields exactly
/// the datagrams `fragment_with_id` would produce from the gathered
/// message (property-tested), with zero segment-byte copies.
///
/// # Panics
///
/// Panics if the message's inline region cannot fit in a fragment's
/// inline region behind the fragment header (headers deeper than
/// [`crate::TX_INLINE_CAP`]` - `[`FRAG_HEADER_LEN`] bytes), or if the
/// message needs more than `u16::MAX` fragments.
pub fn fragment_frame_with_id(msg_id: u64, message: &TxFrame) -> Vec<TxFrame> {
    let total = message.len();
    let count = crate::packets_for_payload(total) as usize;
    assert!(count <= u16::MAX as usize, "message too large to fragment");
    let inline = message.inline();
    assert!(
        FRAG_HEADER_LEN + inline.len() <= crate::TX_INLINE_CAP,
        "message inline header too deep to fragment"
    );
    let mut out = Vec::with_capacity(count);
    for index in 0..count {
        let start = index * MAX_FRAG_CHUNK;
        let end = ((index + 1) * MAX_FRAG_CHUNK).min(total);
        let mut frag = TxFrame::new();
        FragHeader {
            msg_id,
            index: index as u16,
            count: count as u16,
            msg_len: total as u32,
        }
        .encode(&mut frag);
        // Walk the message's regions in logical order, taking each
        // region's overlap with this chunk's [start, end) window. The
        // inline region sits at the logical front, so its overlap (if
        // any) always lands before any segment slice.
        let mut at = 0usize;
        let overlap = |at: usize, len: usize| {
            let lo = start.max(at).min(at + len);
            let hi = end.max(at).min(at + len);
            (lo - at, hi - at)
        };
        let (lo, hi) = overlap(at, inline.len());
        if lo < hi {
            frag.put_slice(&inline[lo..hi]);
        }
        at += inline.len();
        for seg in message.segments() {
            let (lo, hi) = overlap(at, seg.len());
            if lo < hi {
                frag.push_segment(seg.slice(lo..hi));
            }
            at += seg.len();
        }
        debug_assert_eq!(frag.len(), FRAG_HEADER_LEN + (end - start));
        debug_assert!(frag.len() <= crate::MAX_UDP_PAYLOAD);
        out.push(frag);
    }
    out
}

/// A partially reassembled message.
#[derive(Debug)]
struct Partial {
    chunks: Vec<Option<Bytes>>,
    received: usize,
    msg_len: u32,
    last_touch: u64,
}

/// Outcome of feeding one fragment to the [`Reassembler`].
#[derive(Debug, PartialEq, Eq)]
pub enum Reassembly {
    /// The fragment completed a message; here it is.
    Complete(Bytes),
    /// More fragments are needed.
    Incomplete,
    /// The fragment was malformed or inconsistent and was dropped.
    Rejected,
    /// The fragment duplicated one already received and was ignored.
    Duplicate,
}

/// Reassembles fragmented messages, keyed by `(source, msg_id)`.
#[derive(Debug)]
pub struct Reassembler {
    partials: HashMap<(u64, u64), Partial>,
    max_partial: usize,
    clock: u64,
    /// Completed-message count (observability).
    pub completed: u64,
    /// Evicted-partial count (observability).
    pub evicted: u64,
}

impl Reassembler {
    /// Creates a reassembler holding at most `max_partial` in-flight
    /// messages.
    pub fn new(max_partial: usize) -> Self {
        assert!(max_partial > 0);
        Self {
            partials: HashMap::new(),
            max_partial,
            clock: 0,
            completed: 0,
            evicted: 0,
        }
    }

    /// Feeds one UDP payload (frag header + chunk) from `source`.
    pub fn push(&mut self, source: u64, payload: Bytes) -> Reassembly {
        self.clock += 1;
        let mut rd = payload;
        let Some(header) = FragHeader::decode(&mut rd) else {
            return Reassembly::Rejected;
        };
        let chunk = rd;

        // Validate chunk length against its position.
        let expected = expected_chunk_len(&header);
        if chunk.len() != expected {
            return Reassembly::Rejected;
        }

        if header.count == 1 {
            self.completed += 1;
            return Reassembly::Complete(chunk);
        }

        let key = (source, header.msg_id);
        if !self.partials.contains_key(&key) && self.partials.len() >= self.max_partial {
            self.evict_stalest();
        }
        let partial = self.partials.entry(key).or_insert_with(|| Partial {
            chunks: vec![None; header.count as usize],
            received: 0,
            msg_len: header.msg_len,
            last_touch: 0,
        });
        if partial.chunks.len() != header.count as usize || partial.msg_len != header.msg_len {
            // Inconsistent with earlier fragments of the same id: drop
            // the whole partial, it cannot complete correctly.
            self.partials.remove(&key);
            return Reassembly::Rejected;
        }
        partial.last_touch = self.clock;
        let slot = &mut partial.chunks[header.index as usize];
        if slot.is_some() {
            return Reassembly::Duplicate;
        }
        *slot = Some(chunk);
        partial.received += 1;
        if partial.received == partial.chunks.len() {
            let partial = self.partials.remove(&key).expect("present");
            let mut out = BytesMut::with_capacity(partial.msg_len as usize);
            for c in partial.chunks {
                out.put_slice(&c.expect("all chunks received"));
            }
            self.completed += 1;
            return Reassembly::Complete(out.freeze());
        }
        Reassembly::Incomplete
    }

    /// Number of in-flight partial messages.
    pub fn pending(&self) -> usize {
        self.partials.len()
    }

    fn evict_stalest(&mut self) {
        if let Some(key) = self
            .partials
            .iter()
            .min_by_key(|(_, p)| p.last_touch)
            .map(|(k, _)| *k)
        {
            self.partials.remove(&key);
            self.evicted += 1;
        }
    }
}

fn expected_chunk_len(h: &FragHeader) -> usize {
    let len = h.msg_len as usize;
    let start = h.index as usize * MAX_FRAG_CHUNK;
    if h.index + 1 == h.count {
        len.saturating_sub(start)
    } else {
        MAX_FRAG_CHUNK
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn message(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn single_fragment_roundtrip() {
        let msg = message(100);
        let frags = fragment_with_id(1, &msg);
        assert_eq!(frags.len(), 1);
        let mut r = Reassembler::new(8);
        match r.push(0, frags[0].clone()) {
            Reassembly::Complete(b) => assert_eq!(&b[..], &msg[..]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_fragment_roundtrip_in_order() {
        let msg = message(MAX_FRAG_CHUNK * 3 + 17);
        let frags = fragment_with_id(9, &msg);
        assert_eq!(frags.len(), 4);
        let mut r = Reassembler::new(8);
        for (i, f) in frags.iter().enumerate() {
            match r.push(0, f.clone()) {
                Reassembly::Complete(b) => {
                    assert_eq!(i, frags.len() - 1);
                    assert_eq!(&b[..], &msg[..]);
                }
                Reassembly::Incomplete => assert!(i < frags.len() - 1),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn out_of_order_and_interleaved_sources() {
        let msg_a = message(MAX_FRAG_CHUNK * 2);
        let msg_b = message(MAX_FRAG_CHUNK + 5);
        let fa = fragment_with_id(1, &msg_a);
        let fb = fragment_with_id(1, &msg_b); // same id, different source
        let mut r = Reassembler::new(8);
        assert_eq!(r.push(10, fa[1].clone()), Reassembly::Incomplete);
        assert_eq!(r.push(20, fb[1].clone()), Reassembly::Incomplete);
        match r.push(20, fb[0].clone()) {
            Reassembly::Complete(b) => assert_eq!(&b[..], &msg_b[..]),
            other => panic!("unexpected {other:?}"),
        }
        match r.push(10, fa[0].clone()) {
            Reassembly::Complete(b) => assert_eq!(&b[..], &msg_a[..]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicates_ignored() {
        let msg = message(MAX_FRAG_CHUNK * 2);
        let frags = fragment_with_id(3, &msg);
        let mut r = Reassembler::new(8);
        assert_eq!(r.push(0, frags[0].clone()), Reassembly::Incomplete);
        assert_eq!(r.push(0, frags[0].clone()), Reassembly::Duplicate);
        assert!(matches!(
            r.push(0, frags[1].clone()),
            Reassembly::Complete(_)
        ));
    }

    #[test]
    fn malformed_rejected() {
        let mut r = Reassembler::new(8);
        // Too short for a header.
        assert_eq!(
            r.push(0, Bytes::from_static(&[1, 2, 3])),
            Reassembly::Rejected
        );
        // index >= count.
        let mut buf = BytesMut::new();
        FragHeader {
            msg_id: 1,
            index: 0,
            count: 1,
            msg_len: 4,
        }
        .encode(&mut buf);
        buf.put_slice(b"toolong!");
        assert_eq!(r.push(0, buf.freeze()), Reassembly::Rejected);
    }

    #[test]
    fn capacity_bound_evicts_stalest() {
        let mut r = Reassembler::new(2);
        let m = message(MAX_FRAG_CHUNK * 2);
        // Three concurrent partials from three sources; capacity 2.
        for src in 0..3u64 {
            let frags = fragment_with_id(src, &m);
            assert_eq!(r.push(src, frags[0].clone()), Reassembly::Incomplete);
        }
        assert_eq!(r.pending(), 2);
        assert_eq!(r.evicted, 1);
        // Source 0 was stalest and got evicted: completing it now fails
        // (fragment 1 alone re-opens a partial).
        let frags = fragment_with_id(0, &m);
        assert_eq!(r.push(0, frags[1].clone()), Reassembly::Incomplete);
    }

    #[test]
    fn fragment_sizes_respect_mtu() {
        let msg = message(500_000);
        for f in fragment_with_id(0, &msg) {
            assert!(f.len() <= crate::MAX_UDP_PAYLOAD);
        }
    }

    #[test]
    fn inconsistent_geometry_rejected() {
        let msg = message(MAX_FRAG_CHUNK * 3);
        let frags = fragment_with_id(5, &msg);
        let mut r = Reassembler::new(8);
        assert_eq!(r.push(0, frags[0].clone()), Reassembly::Incomplete);
        // Forge a fragment with the same msg_id but a different count.
        let mut buf = BytesMut::new();
        FragHeader {
            msg_id: 5,
            index: 1,
            count: 2,
            msg_len: (MAX_FRAG_CHUNK * 2) as u32,
        }
        .encode(&mut buf);
        buf.put_slice(&msg[MAX_FRAG_CHUNK..2 * MAX_FRAG_CHUNK]);
        assert_eq!(r.push(0, buf.freeze()), Reassembly::Rejected);
    }

    #[test]
    fn fragmenter_assigns_unique_ids() {
        let mut f = Fragmenter::new(100);
        let a = f.fragment(&message(10));
        let b = f.fragment(&message(10));
        let mut ra = a[0].clone();
        let mut rb = b[0].clone();
        let ha = FragHeader::decode(&mut ra).unwrap();
        let hb = FragHeader::decode(&mut rb).unwrap();
        assert_eq!(ha.msg_id, 100);
        assert_eq!(hb.msg_id, 101);
    }
}
