//! UDP header.
//!
//! Clients "use the UDP header to specify the target RX queue for a given
//! packet" (paper §4.1): the NIC's Flow-Director-style filter steers on
//! [`UdpHeader::dst_port`], so the port *is* the queue selector. The base
//! port is [`QUEUE_PORT_BASE`]; queue `q` listens on `QUEUE_PORT_BASE + q`.

use bytes::{Buf, BufMut};

/// First UDP port mapped to an RX queue: port `QUEUE_PORT_BASE + q`
/// steers to queue `q`.
pub const QUEUE_PORT_BASE: u16 = 9000;

/// An 8-byte UDP header. The checksum covers the payload (the
/// pseudo-header is omitted for simplicity; corruption of the IP header
/// is caught by the IP checksum).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port (identifies the client thread).
    pub src_port: u16,
    /// Destination port (selects the server RX queue).
    pub dst_port: u16,
    /// Header + payload length in bytes.
    pub length: u16,
    /// Payload checksum.
    pub checksum: u16,
}

impl UdpHeader {
    /// Encoded size in bytes.
    pub const LEN: usize = 8;

    /// Builds a header for `payload`, computing its checksum.
    pub fn for_payload(src_port: u16, dst_port: u16, payload: &[u8]) -> Self {
        let length = Self::LEN + payload.len();
        assert!(length <= u16::MAX as usize, "UDP datagram too large");
        UdpHeader {
            src_port,
            dst_port,
            length: length as u16,
            checksum: crate::checksum::internet_checksum(payload),
        }
    }

    /// Builds a header for a scatter-gather [`crate::TxFrame`] payload,
    /// checksumming its logical byte stream without materializing it.
    /// Byte-identical to [`UdpHeader::for_payload`] over the gathered
    /// frame.
    pub fn for_frame(src_port: u16, dst_port: u16, frame: &crate::TxFrame) -> Self {
        let length = Self::LEN + frame.len();
        assert!(length <= u16::MAX as usize, "UDP datagram too large");
        let chunks =
            std::iter::once(frame.inline()).chain(frame.segments().iter().map(|s| s.as_ref()));
        UdpHeader {
            src_port,
            dst_port,
            length: length as u16,
            checksum: crate::checksum::internet_checksum_chunks(chunks),
        }
    }

    /// The UDP destination port that steers to RX queue `queue`.
    pub fn port_for_queue(queue: u16) -> u16 {
        QUEUE_PORT_BASE + queue
    }

    /// The RX queue this datagram targets, if its destination port is in
    /// the queue-steering range `[QUEUE_PORT_BASE, QUEUE_PORT_BASE + n)`.
    pub fn target_queue(&self, num_queues: u16) -> Option<u16> {
        let q = self.dst_port.checked_sub(QUEUE_PORT_BASE)?;
        (q < num_queues).then_some(q)
    }

    /// Appends the encoded header to `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(self.length);
        buf.put_u16(self.checksum);
    }

    /// Decodes a header from the front of `buf`.
    pub fn decode<B: Buf>(buf: &mut B) -> Option<Self> {
        if buf.remaining() < Self::LEN {
            return None;
        }
        Some(UdpHeader {
            src_port: buf.get_u16(),
            dst_port: buf.get_u16(),
            length: buf.get_u16(),
            checksum: buf.get_u16(),
        })
    }

    /// Verifies `payload` against the stored checksum.
    pub fn verify_payload(&self, payload: &[u8]) -> bool {
        crate::checksum::internet_checksum(payload) == self.checksum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn roundtrip() {
        let payload = b"minos";
        let h = UdpHeader::for_payload(1234, UdpHeader::port_for_queue(3), payload);
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let mut rd = buf.freeze();
        let parsed = UdpHeader::decode(&mut rd).unwrap();
        assert_eq!(parsed, h);
        assert!(parsed.verify_payload(payload));
        assert!(!parsed.verify_payload(b"wrong"));
    }

    #[test]
    fn queue_steering() {
        let h = UdpHeader::for_payload(1, UdpHeader::port_for_queue(5), b"");
        assert_eq!(h.target_queue(8), Some(5));
        assert_eq!(h.target_queue(4), None); // out of range for 4 queues
        let other = UdpHeader::for_payload(1, 80, b"");
        assert_eq!(other.target_queue(8), None); // below the base port
    }

    #[test]
    fn length_counts_header() {
        let h = UdpHeader::for_payload(1, 2, &[0u8; 100]);
        assert_eq!(h.length as usize, UdpHeader::LEN + 100);
    }
}
