//! Full-frame construction and parsing: Ethernet + IPv4 + UDP + payload.
//!
//! A [`Packet`] is the currency between the virtual NIC and the cores:
//! parsed header metadata plus the UDP payload (which itself carries a
//! fragment of an application [`crate::Message`]).

use crate::frame::{EtherType, EthernetHeader, MacAddr};
use crate::ip::{Ipv4Header, PROTO_UDP};
use crate::txframe::TxFrame;
use crate::udp::UdpHeader;
use bytes::{BufMut, Bytes, BytesMut};

/// Parsed headers of a received frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketMeta {
    /// Ethernet header.
    pub eth: EthernetHeader,
    /// IPv4 header.
    pub ip: Ipv4Header,
    /// UDP header.
    pub udp: UdpHeader,
}

impl PacketMeta {
    /// The RSS 5-tuple of this packet, hashed by the NIC to pick an RX
    /// queue when no Flow-Director rule matches.
    pub fn five_tuple(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.ip.src,
            dst_ip: self.ip.dst,
            src_port: self.udp.src_port,
            dst_port: self.udp.dst_port,
            protocol: self.ip.protocol,
        }
    }
}

/// The classic RSS hash input.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source UDP port.
    pub src_port: u16,
    /// Destination UDP port.
    pub dst_port: u16,
    /// IP protocol number.
    pub protocol: u8,
}

/// A received (or to-be-sent) frame: parsed metadata plus UDP payload.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Parsed headers.
    pub meta: PacketMeta,
    /// UDP payload (fragment header + application chunk).
    pub payload: Bytes,
}

impl Packet {
    /// Total on-wire size of this packet in bytes (Ethernet framing and
    /// FCS included) — what NIC bandwidth accounting charges.
    pub fn wire_len(&self) -> usize {
        EthernetHeader::LEN
            + Ipv4Header::LEN
            + UdpHeader::LEN
            + self.payload.len()
            + crate::ETH_FCS_LEN
    }

    /// A stable identifier of the sending endpoint, used to key
    /// reassembly state: IP and port combined.
    pub fn source_endpoint(&self) -> u64 {
        (u64::from(self.meta.ip.src) << 16) | u64::from(self.meta.udp.src_port)
    }
}

/// Everything needed to address frames between two endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Endpoint {
    /// MAC address.
    pub mac: MacAddr,
    /// IPv4 address (host order).
    pub ip: u32,
    /// UDP port.
    pub port: u16,
}

impl Endpoint {
    /// A deterministic endpoint for host number `host` using `port`.
    pub fn host(host: u32, port: u16) -> Self {
        Endpoint {
            mac: MacAddr::from_host_id(host),
            ip: 0x0A00_0000 | host, // 10.x.y.z
            port,
        }
    }

    /// The identifier a receiver derives for frames sent *from* this
    /// endpoint — equal to [`Packet::source_endpoint`] on arrival.
    pub fn source_key(&self) -> u64 {
        (u64::from(self.ip) << 16) | u64::from(self.port)
    }
}

/// Builds a parsed [`Packet`] directly from endpoints and a UDP payload,
/// skipping wire encoding — the zero-copy TX path: the server transmits
/// parsed packets into its TX rings and the in-process "wire" hands them
/// to the peer as-is, exactly like DPDK hands descriptors around without
/// copying. Equivalent to `parse_frame(build_frame(src, dst, payload))`.
pub fn synthesize(src: Endpoint, dst: Endpoint, payload: Bytes) -> Packet {
    let udp = UdpHeader::for_payload(src.port, dst.port, &payload);
    let ip = Ipv4Header::udp(src.ip, dst.ip, UdpHeader::LEN + payload.len());
    let eth = EthernetHeader {
        dst: dst.mac,
        src: src.mac,
        ethertype: EtherType::Ipv4,
    };
    Packet {
        meta: PacketMeta { eth, ip, udp },
        payload,
    }
}

/// A packet on the *transmit* path: parsed headers plus a
/// scatter-gather [`TxFrame`] payload. The RX-side [`Packet`] carries a
/// contiguous payload because that is what arrives off the wire; the TX
/// side keeps header and value regions separate all the way to the
/// socket so value bytes are never copied (the UDP backend hands the
/// regions to `sendmsg`/`sendmmsg` as iovecs).
#[derive(Clone, Debug)]
pub struct TxPacket {
    /// Parsed headers (addressing; the UDP checksum covers the frame's
    /// logical byte stream).
    pub meta: PacketMeta,
    /// Scatter-gather UDP payload.
    pub frame: TxFrame,
}

impl TxPacket {
    /// Wraps a contiguous packet as a single-segment transmit packet —
    /// no bytes are copied. This is how [`Packet`]-based senders ride
    /// the scatter-gather transmit path unchanged.
    pub fn from_packet(pkt: Packet) -> TxPacket {
        TxPacket {
            meta: pkt.meta,
            frame: TxFrame::from_payload(pkt.payload),
        }
    }

    /// Total on-wire size in bytes (Ethernet framing and FCS included),
    /// mirroring [`Packet::wire_len`].
    pub fn wire_len(&self) -> usize {
        EthernetHeader::LEN
            + Ipv4Header::LEN
            + UdpHeader::LEN
            + self.frame.len()
            + crate::ETH_FCS_LEN
    }
}

/// Builds a parsed [`TxPacket`] from endpoints and a scatter-gather
/// payload — the frame analog of [`synthesize`]: the UDP checksum is
/// computed over the frame's logical byte stream without gathering it,
/// so `synthesize_frame(src, dst, f).meta == synthesize(src, dst,
/// gather(f)).meta` for every frame (tested).
pub fn synthesize_frame(src: Endpoint, dst: Endpoint, frame: TxFrame) -> TxPacket {
    let udp = UdpHeader::for_frame(src.port, dst.port, &frame);
    let ip = Ipv4Header::udp(src.ip, dst.ip, UdpHeader::LEN + frame.len());
    let eth = EthernetHeader {
        dst: dst.mac,
        src: src.mac,
        ethertype: EtherType::Ipv4,
    };
    TxPacket {
        meta: PacketMeta { eth, ip, udp },
        frame,
    }
}

/// Encodes one full frame (with FCS trailer) carrying `udp_payload` from
/// `src` to `dst`.
pub fn build_frame(src: Endpoint, dst: Endpoint, udp_payload: &[u8]) -> Bytes {
    let udp = UdpHeader::for_payload(src.port, dst.port, udp_payload);
    let ip = Ipv4Header::udp(src.ip, dst.ip, UdpHeader::LEN + udp_payload.len());
    let eth = EthernetHeader {
        dst: dst.mac,
        src: src.mac,
        ethertype: EtherType::Ipv4,
    };
    let mut buf = BytesMut::with_capacity(
        EthernetHeader::LEN
            + Ipv4Header::LEN
            + UdpHeader::LEN
            + udp_payload.len()
            + crate::ETH_FCS_LEN,
    );
    eth.encode(&mut buf);
    ip.encode(&mut buf);
    udp.encode(&mut buf);
    buf.extend_from_slice(udp_payload);
    let fcs = crate::checksum::crc32(&buf);
    buf.extend_from_slice(&fcs.to_be_bytes());
    buf.freeze()
}

/// Encodes one full frame (with FCS trailer) into `out` without
/// allocating — the pooled-buffer analog of [`build_frame`]. Returns
/// the frame length, or `None` when `out` is too small to hold it.
pub fn build_frame_into(
    src: Endpoint,
    dst: Endpoint,
    udp_payload: &[u8],
    out: &mut [u8],
) -> Option<usize> {
    let body_len = EthernetHeader::LEN + Ipv4Header::LEN + UdpHeader::LEN + udp_payload.len();
    let total = body_len + crate::ETH_FCS_LEN;
    if out.len() < total {
        return None;
    }
    let udp = UdpHeader::for_payload(src.port, dst.port, udp_payload);
    let ip = Ipv4Header::udp(src.ip, dst.ip, UdpHeader::LEN + udp_payload.len());
    let eth = EthernetHeader {
        dst: dst.mac,
        src: src.mac,
        ethertype: EtherType::Ipv4,
    };
    let mut cursor = &mut out[..body_len];
    eth.encode(&mut cursor);
    ip.encode(&mut cursor);
    udp.encode(&mut cursor);
    cursor.put_slice(udp_payload);
    debug_assert!(cursor.is_empty(), "body length accounts for every field");
    let fcs = crate::checksum::crc32(&out[..body_len]);
    out[body_len..total].copy_from_slice(&fcs.to_be_bytes());
    Some(total)
}

/// Encodes one full Ethernet frame (with FCS trailer) carrying a
/// scatter-gather `payload` into `out` — the [`TxFrame`] analog of
/// [`build_frame_into`], gathering the payload's regions exactly once
/// while serializing. Returns the frame length, or `None` when `out` is
/// too small. Byte-identical to `build_frame_into` over the gathered
/// payload (tested).
pub fn build_frame_into_frame(
    src: Endpoint,
    dst: Endpoint,
    payload: &TxFrame,
    out: &mut [u8],
) -> Option<usize> {
    let body_len = EthernetHeader::LEN + Ipv4Header::LEN + UdpHeader::LEN + payload.len();
    let total = body_len + crate::ETH_FCS_LEN;
    if out.len() < total {
        return None;
    }
    let udp = UdpHeader::for_frame(src.port, dst.port, payload);
    let ip = Ipv4Header::udp(src.ip, dst.ip, UdpHeader::LEN + payload.len());
    let eth = EthernetHeader {
        dst: dst.mac,
        src: src.mac,
        ethertype: EtherType::Ipv4,
    };
    let mut cursor = &mut out[..body_len];
    eth.encode(&mut cursor);
    ip.encode(&mut cursor);
    udp.encode(&mut cursor);
    payload.for_each_chunk(|chunk| cursor.put_slice(chunk));
    debug_assert!(cursor.is_empty(), "body length accounts for every field");
    let fcs = crate::checksum::crc32(&out[..body_len]);
    out[body_len..total].copy_from_slice(&fcs.to_be_bytes());
    Some(total)
}

/// Parses and validates a full frame. Returns `None` for anything that is
/// not a well-formed UDP-in-IPv4-in-Ethernet frame with an intact FCS and
/// intact checksums — exactly what NIC hardware silently discards.
pub fn parse_frame(frame: Bytes) -> Option<Packet> {
    // FCS check first, as the hardware does.
    if frame.len() < crate::ETH_FCS_LEN {
        return None;
    }
    let (body, trailer) = frame.split_at(frame.len() - crate::ETH_FCS_LEN);
    let stored = u32::from_be_bytes(trailer.try_into().unwrap());
    if crate::checksum::crc32(body) != stored {
        return None;
    }
    let mut rd = frame.slice(0..frame.len() - crate::ETH_FCS_LEN);
    let eth = EthernetHeader::decode(&mut rd)?;
    let ip = Ipv4Header::decode(&mut rd)?;
    if ip.protocol != PROTO_UDP {
        return None;
    }
    let udp = UdpHeader::decode(&mut rd)?;
    let payload_len = (udp.length as usize).checked_sub(UdpHeader::LEN)?;
    if rd.len() < payload_len {
        return None;
    }
    let payload = rd.slice(0..payload_len);
    if !udp.verify_payload(&payload) {
        return None;
    }
    Some(Packet {
        meta: PacketMeta { eth, ip, udp },
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let src = Endpoint::host(1, 5555);
        let dst = Endpoint::host(2, UdpHeader::port_for_queue(3));
        let frame = build_frame(src, dst, b"payload");
        let pkt = parse_frame(frame).unwrap();
        assert_eq!(&pkt.payload[..], b"payload");
        assert_eq!(pkt.meta.ip.src, src.ip);
        assert_eq!(pkt.meta.ip.dst, dst.ip);
        assert_eq!(pkt.meta.udp.src_port, 5555);
        assert_eq!(pkt.meta.udp.target_queue(8), Some(3));
        assert_eq!(pkt.meta.eth.src, src.mac);
    }

    #[test]
    fn wire_len_accounts_all_layers() {
        let src = Endpoint::host(1, 1);
        let dst = Endpoint::host(2, 2);
        let frame = build_frame(src, dst, &[0u8; 100]);
        let pkt = parse_frame(frame.clone()).unwrap();
        assert_eq!(pkt.wire_len(), frame.len());
        assert_eq!(pkt.wire_len(), 14 + 20 + 8 + 100 + 4);
    }

    #[test]
    fn corrupt_payload_rejected() {
        let src = Endpoint::host(1, 1);
        let dst = Endpoint::host(2, 2);
        let frame = build_frame(src, dst, b"data!");
        let mut raw = frame.to_vec();
        let n = raw.len();
        raw[n - 1] ^= 0xFF;
        assert!(parse_frame(Bytes::from(raw)).is_none());
    }

    #[test]
    fn five_tuple_extraction() {
        let src = Endpoint::host(7, 1234);
        let dst = Endpoint::host(9, 4321);
        let pkt = parse_frame(build_frame(src, dst, b"x")).unwrap();
        let ft = pkt.meta.five_tuple();
        assert_eq!(ft.src_ip, src.ip);
        assert_eq!(ft.dst_ip, dst.ip);
        assert_eq!(ft.src_port, 1234);
        assert_eq!(ft.dst_port, 4321);
        assert_eq!(ft.protocol, crate::ip::PROTO_UDP);
    }

    #[test]
    fn source_endpoint_distinguishes_ports() {
        let a = parse_frame(build_frame(
            Endpoint::host(1, 10),
            Endpoint::host(2, 1),
            b"",
        ))
        .unwrap();
        let b = parse_frame(build_frame(
            Endpoint::host(1, 11),
            Endpoint::host(2, 1),
            b"",
        ))
        .unwrap();
        assert_ne!(a.source_endpoint(), b.source_endpoint());
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse_frame(Bytes::from_static(&[0u8; 10])).is_none());
        assert!(parse_frame(Bytes::from_static(&[0xFFu8; 60])).is_none());
    }

    #[test]
    fn synthesize_equals_encode_parse() {
        let src = Endpoint::host(3, 1111);
        let dst = Endpoint::host(4, 9002);
        let payload = Bytes::from_static(b"synthesized payload");
        let direct = synthesize(src, dst, payload.clone());
        let parsed = parse_frame(build_frame(src, dst, &payload)).unwrap();
        assert_eq!(direct.meta, parsed.meta);
        assert_eq!(direct.payload, parsed.payload);
        assert_eq!(direct.wire_len(), parsed.wire_len());
    }

    #[test]
    fn build_frame_into_matches_build_frame() {
        let src = Endpoint::host(7, 4242);
        let dst = Endpoint::host(8, 9003);
        let payload = b"no-alloc frame encoding";
        let allocated = build_frame(src, dst, payload);
        let mut buf = [0u8; 256];
        let len = build_frame_into(src, dst, payload, &mut buf).unwrap();
        assert_eq!(&buf[..len], &allocated[..]);
        // And an undersized buffer is refused, not truncated.
        let mut tiny = [0u8; 16];
        assert_eq!(build_frame_into(src, dst, payload, &mut tiny), None);
    }
}
