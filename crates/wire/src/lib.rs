//! Wire protocol for the Minos key-value store.
//!
//! Minos communicates over **UDP on top of IP and Ethernet** (paper §4.1):
//! clients address a specific NIC RX queue through the UDP destination
//! port, requests and replies that exceed one MTU (large PUT requests and
//! large GET replies) are *fragmented and reassembled at the UDP level*,
//! and retransmission is left to the client.
//!
//! This crate implements that stack from scratch:
//!
//! * [`frame`] — Ethernet II framing.
//! * [`ip`] — a minimal IPv4 header with internet checksum.
//! * [`udp`] — UDP header; the destination port doubles as the RX-queue
//!   selector (Flow-Director style steering; see `minos-nic`).
//! * [`frag`] — fragmentation of application messages into MTU-sized
//!   datagrams and a reassembler with bounded memory.
//! * [`message`] — the KV application protocol: GET/PUT/DELETE requests
//!   and replies, with the client send-timestamp piggybacked on replies
//!   exactly as the paper's measurement methodology requires (§5.4).
//! * [`packet`] — a full frame builder/parser combining all layers.
//! * [`txframe`] — the scatter-gather transmit frame ([`TxFrame`]):
//!   inline header region plus refcounted value segments, so encoding
//!   and fragmentation never copy value bytes on the send path.
//!
//! # Cost model hook
//!
//! The paper's cost function for core allocation is "the number of network
//! packets handled to serve the request". [`packets_for_payload`] is the
//! single source of truth for that number: both the real datapath
//! (fragmentation) and the Minos controller use it, so the controller's
//! cost model can never drift from what the network actually does.

#![warn(missing_docs)]

pub mod checksum;
pub mod frag;
pub mod frame;
pub mod ip;
pub mod message;
pub mod packet;
pub mod txframe;
pub mod udp;

pub use frag::{
    FragHeader, FragmentWriter, Fragmenter, Reassembler, Streamed, StreamingReassembler,
};
pub use frame::{EtherType, EthernetHeader, MacAddr};
pub use ip::Ipv4Header;
pub use message::{Message, OpKind, ReplyStatus};
pub use packet::{Packet, PacketMeta, TxPacket};
pub use txframe::{TxFrame, MAX_TX_SEGMENTS, TX_INLINE_CAP};
pub use udp::UdpHeader;

/// Ethernet MTU in bytes: the largest IP packet carried by one frame.
pub const MTU: usize = 1500;

/// Bytes of IPv4 header.
pub const IP_HEADER_LEN: usize = 20;

/// Bytes of UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// Bytes of Ethernet II header.
pub const ETH_HEADER_LEN: usize = 14;

/// Bytes of the Ethernet frame check sequence (CRC-32 trailer). The
/// virtual NIC verifies it exactly as hardware does, so corruption
/// anywhere in a frame is detected and the frame dropped.
pub const ETH_FCS_LEN: usize = 4;

/// Maximum UDP payload per datagram under the MTU.
pub const MAX_UDP_PAYLOAD: usize = MTU - IP_HEADER_LEN - UDP_HEADER_LEN; // 1472

/// Maximum application chunk per fragment (UDP payload minus the
/// fragmentation header).
pub const MAX_FRAG_CHUNK: usize = MAX_UDP_PAYLOAD - frag::FRAG_HEADER_LEN; // 1456

/// Number of network packets needed to carry `payload_len` application
/// bytes — the paper's per-request cost function.
///
/// Every message occupies at least one packet; payloads beyond
/// [`MAX_FRAG_CHUNK`] bytes fragment into `ceil(len / MAX_FRAG_CHUNK)`
/// packets.
#[inline]
pub fn packets_for_payload(payload_len: usize) -> u32 {
    if payload_len <= MAX_FRAG_CHUNK {
        1
    } else {
        payload_len.div_ceil(MAX_FRAG_CHUNK) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_cost_boundaries() {
        assert_eq!(packets_for_payload(0), 1);
        assert_eq!(packets_for_payload(1), 1);
        assert_eq!(packets_for_payload(MAX_FRAG_CHUNK), 1);
        assert_eq!(packets_for_payload(MAX_FRAG_CHUNK + 1), 2);
        assert_eq!(packets_for_payload(2 * MAX_FRAG_CHUNK), 2);
        assert_eq!(
            packets_for_payload(500_000),
            500_000u32.div_ceil(MAX_FRAG_CHUNK as u32)
        );
    }

    #[test]
    fn header_length_budget() {
        // An MTU-sized IP packet plus Ethernet framing fits a classic
        // 1514-byte frame.
        assert_eq!(MTU + ETH_HEADER_LEN, 1514);
        assert_eq!(MAX_UDP_PAYLOAD, 1472);
        assert_eq!(MAX_FRAG_CHUNK, 1456);
    }
}
