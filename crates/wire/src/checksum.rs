//! The internet checksum (RFC 1071), used by the IPv4 and UDP headers.

/// Computes the 16-bit one's-complement internet checksum of `data`.
///
/// The returned value is ready to be stored in a header checksum field
/// (i.e. it is the complement of the one's-complement sum). Verifying a
/// buffer that *includes* its checksum field must yield `0`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// The one's-complement 16-bit sum of `data` (without final inversion).
pub fn ones_complement_sum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

/// Verifies a buffer whose checksum field is already filled in: the
/// one's-complement sum over the whole buffer must be `0xFFFF`
/// (equivalently, the complement is zero).
pub fn verify(data: &[u8]) -> bool {
    ones_complement_sum(data) == 0xFFFF
}

/// Computes the internet checksum over the *concatenation* of `chunks`
/// without materializing it — the scatter-gather analog of
/// [`internet_checksum`], used to checksum a [`crate::TxFrame`]'s
/// logical byte stream (inline header region followed by its payload
/// segments). Byte-for-byte equivalent to checksumming the contiguous
/// stream: odd-length chunks carry their dangling byte into the next
/// chunk so 16-bit word boundaries fall exactly where they would in one
/// flat buffer.
pub fn internet_checksum_chunks<'a>(chunks: impl IntoIterator<Item = &'a [u8]>) -> u16 {
    let mut sum: u32 = 0;
    let mut pending: Option<u8> = None;
    for chunk in chunks {
        let mut c = chunk;
        if let Some(hi) = pending.take() {
            match c.split_first() {
                Some((lo, rest)) => {
                    sum += u32::from(u16::from_be_bytes([hi, *lo]));
                    c = rest;
                }
                None => {
                    pending = Some(hi);
                    continue;
                }
            }
        }
        let mut words = c.chunks_exact(2);
        for w in &mut words {
            sum += u32::from(u16::from_be_bytes([w[0], w[1]]));
        }
        if let [last] = words.remainder() {
            pending = Some(*last);
        }
    }
    if let Some(hi) = pending {
        sum += u32::from(u16::from_be_bytes([hi, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// The IEEE 802.3 CRC-32 (reflected, polynomial `0xEDB88320`) used as the
/// Ethernet frame check sequence. NIC hardware verifies the FCS and drops
/// frames that fail it — which is how corruption anywhere in the frame
/// (including the MAC header, which no IP/UDP checksum covers) is caught.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data), 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        let even = [0xab, 0x00];
        let odd = [0xab];
        assert_eq!(ones_complement_sum(&even), ones_complement_sum(&odd));
    }

    #[test]
    fn roundtrip_verifies() {
        let mut data = vec![0x45, 0x00, 0x00, 0x54, 0xa6, 0xf2, 0x40, 0x00, 0x40, 0x01];
        let ck = internet_checksum(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        // Flipping any byte breaks verification.
        data[3] ^= 0xFF;
        assert!(!verify(&data));
    }

    #[test]
    fn empty_buffer() {
        assert_eq!(ones_complement_sum(&[]), 0);
        assert_eq!(internet_checksum(&[]), 0xFFFF);
    }

    #[test]
    fn chunked_checksum_equals_contiguous_for_every_split() {
        // Odd/even chunk lengths, empty chunks, and all split points of
        // a buffer must agree with the one-pass checksum.
        let data: Vec<u8> = (0..37u8).map(|i| i.wrapping_mul(41) ^ 0x5A).collect();
        let flat = internet_checksum(&data);
        for split in 0..=data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(internet_checksum_chunks([a, b]), flat, "split at {split}");
            assert_eq!(
                internet_checksum_chunks([a, &[][..], b, &[][..]]),
                flat,
                "split at {split} with empty chunks"
            );
        }
        // Many tiny chunks (every word boundary misaligned).
        let ones: Vec<&[u8]> = data.chunks(1).collect();
        assert_eq!(internet_checksum_chunks(ones), flat);
        let threes: Vec<&[u8]> = data.chunks(3).collect();
        assert_eq!(internet_checksum_chunks(threes), flat);
        assert_eq!(internet_checksum_chunks(std::iter::empty()), 0xFFFF);
    }

    #[test]
    fn crc32_known_answer() {
        // The canonical check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"the quick brown fox";
        let good = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), good, "flip at {i}.{bit} undetected");
                copy[i] ^= 1 << bit;
            }
        }
    }
}
