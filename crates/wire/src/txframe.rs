//! [`TxFrame`]: the scatter-gather transmit frame.
//!
//! The old send path serialized every message into one contiguous
//! buffer (`Message::encode`) and then copied it again per fragment
//! (`Fragmenter::fragment`) — two full passes over the value on the GET
//! latency path the paper measures (§4.1 moves requests in batches
//! precisely to keep per-request overhead off the critical path). A
//! `TxFrame` instead describes a datagram as a small *inline* header
//! region plus up to [`MAX_TX_SEGMENTS`] refcounted [`Bytes`] segments:
//! headers are written once into the inline region and the value rides
//! along as an `O(1)` clone/slice, so value bytes are never copied
//! between the store and the socket. The UDP backend hands the regions
//! to the kernel as one iovec array per datagram (`sendmsg`/`sendmmsg`
//! scatter-gather); only backends that must materialize a contiguous
//! wire image (the in-process virtual NIC) gather — and they count
//! every gathered segment byte so the zero-copy invariant stays an
//! asserted number, not a claim.

use bytes::{BufMut, Bytes};

/// Capacity of the inline header region of a [`TxFrame`], in bytes.
///
/// Sized for the deepest header stack a fragment carries: the 16-byte
/// fragment header plus the 32-byte application-message header, with
/// slack for future protocol growth.
pub const TX_INLINE_CAP: usize = 96;

/// Maximum refcounted payload segments per [`TxFrame`].
pub const MAX_TX_SEGMENTS: usize = 4;

/// A scatter-gather transmit frame: one UDP payload described as an
/// inline header region plus refcounted payload segments.
///
/// The logical byte stream of the frame is the inline region followed
/// by every segment in order; [`TxFrame::to_contiguous`] materializes
/// exactly that stream, and all encoders are tested byte-identical to
/// their contiguous counterparts. Writing headers goes through the
/// [`BufMut`] impl (appends to the inline region); values are attached
/// with [`TxFrame::push_segment`], which never copies.
#[derive(Clone)]
pub struct TxFrame {
    inline: [u8; TX_INLINE_CAP],
    inline_len: usize,
    segments: [Bytes; MAX_TX_SEGMENTS],
    n_segments: usize,
}

impl Default for TxFrame {
    fn default() -> Self {
        Self::new()
    }
}

impl TxFrame {
    /// An empty frame.
    pub fn new() -> Self {
        TxFrame {
            inline: [0u8; TX_INLINE_CAP],
            inline_len: 0,
            segments: std::array::from_fn(|_| Bytes::new()),
            n_segments: 0,
        }
    }

    /// A frame whose entire payload is one refcounted segment (no
    /// inline header). This is how a contiguous packet enters the
    /// scatter-gather world without a copy.
    pub fn from_payload(payload: Bytes) -> Self {
        let mut f = TxFrame::new();
        f.push_segment(payload);
        f
    }

    /// The inline header region written so far.
    pub fn inline(&self) -> &[u8] {
        &self.inline[..self.inline_len]
    }

    /// The attached payload segments, in order.
    pub fn segments(&self) -> &[Bytes] {
        &self.segments[..self.n_segments]
    }

    /// Total frame length: inline bytes plus every segment.
    pub fn len(&self) -> usize {
        self.inline_len + self.segment_len()
    }

    /// True when the frame carries no bytes at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes carried by refcounted segments (the portion a gathering
    /// backend must copy — and what the `tx_copied_bytes` gauges count).
    pub fn segment_len(&self) -> usize {
        self.segments().iter().map(Bytes::len).sum()
    }

    /// Attaches a refcounted payload segment without copying. Empty
    /// segments are dropped.
    ///
    /// # Panics
    ///
    /// Panics if the frame already holds [`MAX_TX_SEGMENTS`] segments.
    pub fn push_segment(&mut self, segment: Bytes) {
        if segment.is_empty() {
            return;
        }
        assert!(
            self.n_segments < MAX_TX_SEGMENTS,
            "TxFrame segment overflow (> {MAX_TX_SEGMENTS})"
        );
        self.segments[self.n_segments] = segment;
        self.n_segments += 1;
    }

    /// Invokes `f` for each non-empty region of the frame, in logical
    /// order (inline region first, then segments). The concatenation of
    /// the visited slices is the frame's wire image.
    pub fn for_each_chunk(&self, mut f: impl FnMut(&[u8])) {
        if self.inline_len > 0 {
            f(self.inline());
        }
        for seg in self.segments() {
            f(seg.as_slice());
        }
    }

    /// Materializes the frame as one contiguous [`Bytes`], returning it
    /// together with the number of *segment* bytes that had to be
    /// copied to build it. A frame that is already a single segment
    /// with no inline header is returned as an `O(1)` clone (0 copied).
    pub fn to_contiguous(&self) -> (Bytes, usize) {
        if self.inline_len == 0 && self.n_segments == 1 {
            return (self.segments[0].clone(), 0);
        }
        let mut out = Vec::with_capacity(self.len());
        self.for_each_chunk(|chunk| out.extend_from_slice(chunk));
        (Bytes::from(out), self.segment_len())
    }

    /// Gathers the frame into the front of `out`, returning the frame
    /// length — or `None` when `out` is too small, with `out` left in
    /// an unspecified state.
    pub fn gather_into(&self, out: &mut [u8]) -> Option<usize> {
        let total = self.len();
        if out.len() < total {
            return None;
        }
        let mut at = 0;
        self.for_each_chunk(|chunk| {
            out[at..at + chunk.len()].copy_from_slice(chunk);
            at += chunk.len();
        });
        Some(total)
    }
}

/// Header writes append to the inline region.
///
/// # Panics
///
/// Panics if a write would exceed [`TX_INLINE_CAP`] — headers are
/// fixed-size, so this is a protocol bug, not a runtime condition.
impl BufMut for TxFrame {
    fn put_slice(&mut self, src: &[u8]) {
        let end = self.inline_len + src.len();
        assert!(end <= TX_INLINE_CAP, "TxFrame inline region overflow");
        self.inline[self.inline_len..end].copy_from_slice(src);
        self.inline_len = end;
    }
}

impl std::fmt::Debug for TxFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TxFrame({} inline + {} segments = {} bytes)",
            self.inline_len,
            self.n_segments,
            self.len()
        )
    }
}

impl PartialEq for TxFrame {
    fn eq(&self, other: &TxFrame) -> bool {
        self.to_contiguous().0 == other.to_contiguous().0
    }
}

impl Eq for TxFrame {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_segments_concatenate_in_order() {
        let mut f = TxFrame::new();
        f.put_u16(0xABCD);
        f.push_segment(Bytes::from_static(b"hello"));
        f.push_segment(Bytes::new()); // dropped
        f.push_segment(Bytes::from_static(b" world"));
        assert_eq!(f.len(), 2 + 11);
        assert_eq!(f.segment_len(), 11);
        assert_eq!(f.segments().len(), 2);
        let (bytes, copied) = f.to_contiguous();
        assert_eq!(&bytes[..], b"\xab\xcdhello world");
        assert_eq!(copied, 11);
    }

    #[test]
    fn single_segment_contiguous_is_zero_copy() {
        let payload = Bytes::from_static(b"already contiguous");
        let f = TxFrame::from_payload(payload.clone());
        let (bytes, copied) = f.to_contiguous();
        assert_eq!(bytes, payload);
        assert_eq!(copied, 0, "a pure single-segment frame must not copy");
    }

    #[test]
    fn gather_into_matches_to_contiguous() {
        let mut f = TxFrame::new();
        f.put_u64(42);
        f.push_segment(Bytes::from(vec![7u8; 100]));
        let mut buf = [0u8; 256];
        let len = f.gather_into(&mut buf).unwrap();
        assert_eq!(&buf[..len], &f.to_contiguous().0[..]);
        let mut tiny = [0u8; 8];
        assert_eq!(f.gather_into(&mut tiny), None);
    }

    #[test]
    #[should_panic(expected = "inline region overflow")]
    fn inline_overflow_panics() {
        let mut f = TxFrame::new();
        f.put_slice(&[0u8; TX_INLINE_CAP + 1]);
    }

    #[test]
    #[should_panic(expected = "segment overflow")]
    fn segment_overflow_panics() {
        let mut f = TxFrame::new();
        for _ in 0..=MAX_TX_SEGMENTS {
            f.push_segment(Bytes::from_static(b"x"));
        }
    }
}
