//! End-to-end mini-sweep over real UDP loopback: both a baseline and
//! Minos serve the same two-rate ladder, and every point carries the
//! schedule-based latency histogram the figures report.

use minos::figures::{run_sweep, run_sweep_resuming, Policy, SweepConfig, BUILTIN_DISCIPLINE};
use minos::net::testport::TestPorts;
use std::time::Duration;

// Disjoint from the suites at 9000–9450 and the CI sweep at 9500.
static PORTS: TestPorts = TestPorts::new(26_000, 28_000);

#[test]
fn mini_sweep_two_policies_two_rates() {
    let rates = vec![500.0, 1_000.0];
    let mut cfg = SweepConfig::loopback(0, rates.clone());
    cfg.policies = vec![Policy::Minos, Policy::Hkh];
    cfg.base_port = PORTS.alloc((cfg.policies.len() * cfg.cores) as u16);
    cfg.duration = Duration::from_secs(1);
    cfg.keys = 512;
    cfg.large_keys = 4;

    let mut streamed = 0usize;
    let points = run_sweep(&cfg, |_| streamed += 1);

    assert_eq!(points.len(), 4, "2 policies x 2 rates");
    assert_eq!(streamed, points.len(), "progress sees every point");

    for policy in &cfg.policies {
        let of_policy: Vec<_> = points
            .iter()
            .filter(|p| p.policy == policy.name())
            .collect();
        assert_eq!(of_policy.len(), rates.len());
        // Rates swept in the order configured (ascending here).
        for (point, &rate) in of_policy.iter().zip(&rates) {
            assert_eq!(point.offered_rate, rate);
            // Minos points carry their discipline; baselines run their
            // one builtin dispatch.
            let expect_discipline = match policy {
                Policy::Minos => "size-aware",
                _ => BUILTIN_DISCIPLINE,
            };
            assert_eq!(point.discipline, expect_discipline);
            assert!(point.sent > 0, "{}: nothing sent", point.policy);
            // Far below loopback capacity: every request completes.
            assert!(
                point.completed > 0,
                "{} @ {}: nothing completed",
                point.policy,
                rate
            );
            let q = point
                .latency_us
                .expect("schedule-based histogram populated");
            assert!(q.count > 0 && q.p99_us > 0.0);
            let svc = point
                .service_latency_us
                .expect("service histogram populated");
            assert_eq!(q.count, svc.count, "same samples in both clocks");
            // Schedule-based latency dominates send-based per sample.
            assert!(q.p99_us >= svc.p99_us - 0.001);
            // Each point's record parses back from its own JSON.
            let parsed = minos::figures::SweepPoint::parse(
                &minos::obs::JsonValue::parse(&point.to_json()).unwrap(),
            )
            .expect("point round-trips");
            assert_eq!(parsed.policy, point.policy);
            assert_eq!(parsed.discipline, point.discipline);
            assert_eq!(parsed.completed, point.completed);
        }
    }

    // The small-class histogram (the shoot-out's verdict metric) is
    // populated wherever small requests completed.
    assert!(points
        .iter()
        .any(|p| p.latency_small_us.is_some_and(|q| q.count > 0)));

    // --resume over the finished sweep re-measures nothing: every
    // (policy, discipline, rate) key is already present, so no server
    // is even bound and the carried points come back verbatim.
    let mut resumed_fresh = 0usize;
    let resumed = run_sweep_resuming(&cfg, &points, |_| resumed_fresh += 1);
    assert_eq!(resumed_fresh, 0, "nothing left to measure");
    assert_eq!(resumed, points);
}
