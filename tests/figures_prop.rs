//! Property tests pinning the `BENCH_fig_*.json` sweep-point schema:
//! for any sweep point, `SweepPoint::parse` inverts
//! `SweepPoint::to_json` on every integer, boolean, and string field
//! exactly, and the JSON rendering is a fixpoint (serialize → parse →
//! serialize reproduces the same bytes), so float truncation to the
//! writer's fixed decimal precision converges after one round instead
//! of drifting.

use minos::figures::{Policy, SweepPoint, BUILTIN_DISCIPLINE};
use minos::obs::JsonValue;
use minos::stats::Quantiles;
use proptest::prelude::*;

fn quantiles_strategy() -> impl Strategy<Value = Option<Quantiles>> {
    let q = (
        any::<u64>(),
        (0u32..100_000_000u32),
        (0u32..100_000_000u32),
        (0u32..100_000_000u32),
        (0u32..100_000_000u32),
    )
        .prop_map(|(count, mean, p50, p99, max)| Quantiles {
            count,
            mean_us: f64::from(mean) / 1e3,
            p50_us: f64::from(p50) / 1e3,
            p90_us: f64::from(p50) / 1e3 + 1.0,
            p95_us: f64::from(p50) / 1e3 + 2.0,
            p99_us: f64::from(p99) / 1e3,
            p999_us: f64::from(p99) / 1e3 + 1.0,
            p9999_us: f64::from(p99) / 1e3 + 2.0,
            max_us: f64::from(max) / 1e3,
        });
    prop_oneof![Just(None), q.prop_map(Some)]
}

const DISCIPLINES: [&str; 7] = [
    BUILTIN_DISCIPLINE,
    "size-aware",
    "cfcfs",
    "dfcfs",
    "jsq",
    "round-robin",
    "random",
];

// NO_EVICTION first: classic points keep the historical resume key.
const EVICTIONS: [&str; 3] = ["none", "clock", "size-aware-clock"];

// NO_FAULTS first: clean points keep the historical resume key.
const FAULTS: [&str; 3] = [
    "none",
    "drop=0.01,reorder=8,seed=42",
    "drop=0.02,dup=0.005,delay=200,seed=7",
];

fn point_strategy() -> impl Strategy<Value = SweepPoint> {
    (
        (
            0usize..3,
            0usize..7,
            0usize..3,
            (0u32..u32::MAX),
            any::<u64>(),
            any::<u64>(),
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<bool>(), (0u32..u32::MAX), any::<u64>(), any::<u64>()),
        (
            quantiles_strategy(),
            quantiles_strategy(),
            quantiles_strategy(),
            quantiles_strategy(),
        ),
        (
            0usize..3,
            any::<bool>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
    )
        .prop_map(
            |(
                (policy_ix, discipline_ix, eviction_ix, rate_mhz, clients, cores),
                (sent, completed, outstanding, errors),
                (zero_loss, behind_us, tx_copied_bytes, reply_copied_bytes),
                (latency_us, latency_small_us, service_latency_us, latency_large_us),
                (fault_ix, hedging, timed_out, hedges_sent, hedge_wins, accounting_warnings),
            )| {
                SweepPoint {
                    policy: Policy::ALL[policy_ix].name().to_string(),
                    discipline: DISCIPLINES[discipline_ix].to_string(),
                    eviction: EVICTIONS[eviction_ix].to_string(),
                    // Rates at the writer's 0.1 precision stay exact.
                    offered_rate: f64::from(rate_mhz) / 10.0,
                    duration_s: 2.5,
                    clients,
                    cores,
                    sent,
                    completed,
                    outstanding,
                    errors,
                    achieved_rate: f64::from(rate_mhz) / 20.0,
                    loss_rate: if sent > 0 {
                        outstanding as f64 / sent as f64
                    } else {
                        0.0
                    },
                    zero_loss,
                    behind_max_us: f64::from(behind_us) / 10.0,
                    latency_us,
                    latency_small_us,
                    service_latency_us,
                    latency_large_us,
                    tx_copied_bytes,
                    reply_copied_bytes,
                    timed_out,
                    fault_profile: FAULTS[fault_ix].to_string(),
                    hedging,
                    hedges_sent,
                    hedge_wins,
                    accounting_warnings,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sweep_point_schema_round_trips(point in point_strategy()) {
        let json = point.to_json();
        let parsed = SweepPoint::parse(&JsonValue::parse(&json).unwrap())
            .expect("every serialized point parses");

        // Integer, boolean, and string fields are exact.
        prop_assert_eq!(&parsed.policy, &point.policy);
        prop_assert_eq!(&parsed.discipline, &point.discipline);
        prop_assert_eq!(&parsed.eviction, &point.eviction);
        prop_assert_eq!(parsed.clients, point.clients);
        prop_assert_eq!(parsed.cores, point.cores);
        prop_assert_eq!(parsed.sent, point.sent);
        prop_assert_eq!(parsed.completed, point.completed);
        prop_assert_eq!(parsed.outstanding, point.outstanding);
        prop_assert_eq!(parsed.errors, point.errors);
        prop_assert_eq!(parsed.zero_loss, point.zero_loss);
        prop_assert_eq!(parsed.tx_copied_bytes, point.tx_copied_bytes);
        prop_assert_eq!(parsed.reply_copied_bytes, point.reply_copied_bytes);
        prop_assert_eq!(
            parsed.latency_us.map(|q| q.count),
            point.latency_us.map(|q| q.count)
        );
        prop_assert_eq!(
            parsed.latency_small_us.is_some(),
            point.latency_small_us.is_some()
        );
        prop_assert_eq!(
            parsed.service_latency_us.is_some(),
            point.service_latency_us.is_some()
        );
        prop_assert_eq!(
            parsed.latency_large_us.is_some(),
            point.latency_large_us.is_some()
        );

        // The --resume identity survives the round trip.
        prop_assert_eq!(parsed.key(), point.key());

        // Serialization is a fixpoint: floats already truncated to the
        // writer's precision re-render byte-identically.
        prop_assert_eq!(parsed.to_json(), json);
    }
}
