//! Chaos end-to-end: a real UDP Minos server with clients behind the
//! deterministic fault injector, recovering through retries and hedged
//! requests.
//!
//! The contracts pinned here:
//!
//! * **Zero lost acknowledged writes** — every PUT the server answered
//!   `Ok` is readable by a follow-up GET, no matter what the injector
//!   did to the packets in between (drop, duplicate, reorder).
//! * **Honest accounting under faults** — the client's counter identity
//!   `sent == completed + outstanding + timed_out` holds against the
//!   actual pending-table size, and a drained run leaves nothing
//!   outstanding.
//! * **Hedging recovers the small-class tail** — with the hedge delay
//!   far below the retry timeout, a dropped small request is recovered
//!   by its hedge copy (`hedge_wins > 0`) and the small-class p99 stays
//!   well under the retry timeout that a retry-only client would pay.
//! * **The shed valve protects without corrupting** — past the
//!   watermark, large PUTs bounce with `Overloaded` (never partially
//!   applied), small traffic still completes, and `dispatch.sheds`
//!   tells the story.
//!
//! Both syscall paths run the same chaos: `recvmmsg`/`sendmmsg`
//! batching and one-datagram-per-syscall (`batch == 1`).

use minos::core::client::{Client, Completion, HedgePolicy, RetryPolicy};
use minos::core::config::ThresholdMode;
use minos::core::server::{MinosServer, ServerConfig};
use minos::net::testport::TestPorts;
use minos::net::{FaultProfile, FaultTransport, Transport, UdpConfig, UdpTransport};
use minos::wire::message::ReplyStatus;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

// Disjoint from the suites at 9000–9450, the CI sweep at 9500, the
// stress suite at 21000–24900, and figures_e2e at 26000–28000.
static PORTS: TestPorts = TestPorts::new(28_100, 29_900);

const QUEUES: u16 = 2;

fn bind_server(num_queues: u16, batch: usize) -> Arc<UdpTransport> {
    loop {
        let base = PORTS.alloc(num_queues);
        let config = UdpConfig {
            batch,
            ..UdpConfig::loopback(base, num_queues)
        };
        if let Ok(t) = UdpTransport::bind(config) {
            return Arc::new(t);
        }
    }
}

/// A client over its own UDP socket, optionally wrapped in the fault
/// injector, with retry + hedging dialed for the chaos runs: the hedge
/// delay (<= 3 ms) sits far below the retry timeout (40 ms), so a
/// dropped small request is recovered by its hedge long before the
/// retransmit path would fire.
fn chaos_client(
    server: &UdpTransport,
    id: u16,
    batch: usize,
    profile: Option<FaultProfile>,
) -> (Arc<FaultTransport<UdpTransport>>, Client) {
    let udp = Arc::new(
        UdpTransport::bind_client_with(UdpConfig {
            batch,
            pool_slots: 8192,
            ..UdpConfig::client(Ipv4Addr::LOCALHOST)
        })
        .unwrap(),
    );
    let endpoint = udp.local_endpoint(0);
    let fault = Arc::new(FaultTransport::new(
        Arc::clone(&udp),
        profile.unwrap_or_default(),
    ));
    let mut client = Client::with_transport(
        Arc::clone(&fault) as Arc<dyn Transport>,
        endpoint,
        server.local_endpoint(0),
        QUEUES,
        id,
        0x00C1_1A05 ^ u64::from(id),
    )
    .with_retry(RetryPolicy::new(Duration::from_millis(40), 64));
    if profile.is_some() {
        client = client.with_hedging(HedgePolicy {
            percentile: 99.0,
            min_delay: Duration::from_micros(500),
            max_delay: Duration::from_millis(3),
        });
    }
    (fault, client)
}

/// The injected weather for the roundtrip runs: ~2% loss, occasional
/// duplicates, and a 4-deep reorder window, in both directions.
fn chaos_profile() -> FaultProfile {
    FaultProfile::parse("drop=0.02,dup=0.005,reorder=4,seed=7").unwrap()
}

/// Polls `client` until fewer than `cap` requests are in flight,
/// folding completions into `sink`.
fn throttle(client: &mut Client, cap: u64, sink: &mut Vec<Completion>) {
    while client.totals().outstanding() > cap {
        sink.extend(client.poll());
    }
}

/// Like [`Client::drain`] but keeps every completion —
/// `Client::drain` polls internally and discards them.
fn drain_collect(client: &mut Client, timeout: Duration, sink: &mut Vec<Completion>) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while client.totals().outstanding() > 0 {
        sink.extend(client.poll());
        if std::time::Instant::now() > deadline {
            return false;
        }
        std::hint::spin_loop();
    }
    true
}

/// The full chaos roundtrip on one syscall path: unique-key small PUTs
/// plus a handful of multi-fragment large PUTs through the injector,
/// then a GET for every acknowledged write.
fn chaos_roundtrip(batch: usize) {
    const SMALL_PUTS: u64 = 600;
    const LARGE_PUTS: u64 = 8;
    const SMALL_LEN: usize = 120;
    const LARGE_LEN: usize = 4_000; // > MAX_FRAG_CHUNK: fragments on the wire

    let transport = bind_server(QUEUES, batch);
    let mut server = MinosServer::start_with_transport(
        ServerConfig::for_test(QUEUES as usize, 10_000),
        Arc::clone(&transport),
    );
    let registry = server.registry();
    let (fault, mut client) = chaos_client(&transport, 1, batch, Some(chaos_profile()));

    // ---- Phase 1: writes through the weather. ----
    let mut completions = Vec::new();
    for key in 0..SMALL_PUTS {
        client.send_put(key, &[(key % 251) as u8; SMALL_LEN], false);
        throttle(&mut client, 64, &mut completions);
    }
    for key in 1_000..1_000 + LARGE_PUTS {
        client.send_put(key, &vec![(key % 251) as u8; LARGE_LEN], true);
        throttle(&mut client, 8, &mut completions);
    }
    assert!(
        drain_collect(&mut client, Duration::from_secs(20), &mut completions),
        "writes must drain through retries"
    );

    let acked: HashMap<u64, ReplyStatus> = completions.iter().map(|c| (c.key, c.status)).collect();
    assert_eq!(
        acked.len() as u64,
        SMALL_PUTS + LARGE_PUTS,
        "every unique key completed exactly once"
    );
    assert!(
        acked.values().all(|&s| s == ReplyStatus::Ok),
        "no spurious error replies on a healthy store"
    );

    // Honest accounting: the counter identity holds against the actual
    // pending table, and nothing was abandoned (the retry budget is far
    // past what 2% loss can exhaust).
    let totals = client.totals();
    assert_eq!(totals.timed_out, 0, "retry budget must absorb 2% loss");
    assert_eq!(
        totals.sent,
        totals.completed + totals.outstanding() + totals.timed_out,
        "accounting identity"
    );
    assert_eq!(totals.outstanding(), client.pending_len());
    assert_eq!(totals.outstanding(), 0, "drained means empty table");

    // The injector actually injected, and the recovery machinery ran:
    // hedges fired and at least one hedge copy beat its original (a
    // dropped original makes that certain).
    let injected = fault.fault_stats();
    assert!(
        injected.rx_dropped + injected.tx_dropped > 0,
        "{injected:?}"
    );
    assert!(totals.hedges_sent > 0, "hedges must fire under loss");
    assert!(totals.hedge_wins > 0, "a dropped original's hedge must win");
    assert!(
        totals.retransmits + totals.hedges_sent >= totals.hedge_wins,
        "wins are a subset of recovery sends"
    );

    // Hedging recovered the small-class tail: dropped small requests
    // were answered by their ~3 ms hedges, not by 40 ms retransmits.
    let small = client
        .latency_small()
        .quantiles()
        .expect("small completions recorded");
    assert!(
        small.p99_us < 35_000.0,
        "small-class p99 {}us should sit well under the 40ms retry timeout",
        small.p99_us
    );

    // ---- Phase 2: every acknowledged write is readable. ----
    let mut reads = Vec::new();
    for &key in acked.keys() {
        client.send_get(key, key >= 1_000);
        throttle(&mut client, 64, &mut reads);
    }
    assert!(
        drain_collect(&mut client, Duration::from_secs(20), &mut reads),
        "reads must drain through retries"
    );
    let read_ok: HashSet<u64> = reads
        .iter()
        .filter(|c| c.status == ReplyStatus::Ok)
        .map(|c| c.key)
        .collect();
    for &key in acked.keys() {
        assert!(
            read_ok.contains(&key),
            "acked write {key} lost — GET did not come back Ok"
        );
    }

    // Bounded pools: the injector's hold buffers emptied with the run
    // (quiescence grace flushes reorder holds) and the RX pool got all
    // its buffers back except what the hold may still pin.
    let mut metrics = Vec::new();
    fault.collect_metrics(&mut metrics);
    let held = metrics
        .iter()
        .find_map(|(name, v)| (name == "fault.held").then(|| v.as_gauge()))
        .flatten()
        .expect("fault.held gauge exported");
    assert!(held < 64.0, "hold buffers must not accumulate: {held}");
    assert!(
        metrics.iter().any(|(name, _)| name == "fault.rx_dropped"),
        "fault.* counters exported through collect_metrics"
    );

    // The dispatch valve's counter is live in the server snapshot even
    // when nothing sheds (this run never crossed a watermark).
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("dispatch.sheds"), Some(0));

    let drained = server.drain(Duration::from_secs(5));
    server.shutdown();
    assert!(drained);
}

#[test]
fn chaos_roundtrip_batched_syscalls() {
    chaos_roundtrip(32);
}

#[test]
fn chaos_roundtrip_one_datagram_per_syscall() {
    chaos_roundtrip(1);
}

/// The overload valve: with a 1-deep watermark and a burst of large
/// PUTs, placements find the large queue occupied and shed with
/// `Overloaded`. A shed PUT is never partially applied, the client
/// counts the back-pressure, and small traffic keeps completing.
#[test]
fn shed_valve_bounces_large_puts_cleanly() {
    const LARGE: u64 = 400;
    let transport = bind_server(QUEUES, 32);
    let mut config = ServerConfig::for_test(QUEUES as usize, 10_000);
    // A fixed threshold makes "large" deterministic for the assert, and
    // the 1-deep watermark makes collisions in a burst unavoidable.
    config.minos.threshold_mode = ThresholdMode::Static(512);
    config.minos.shed_watermark = 1;
    let mut server = MinosServer::start_with_transport(config, Arc::clone(&transport));
    let registry = server.registry();
    let (_fault, mut client) = chaos_client(&transport, 2, 32, None);

    // Burst single-fragment large PUTs (1 KiB > threshold) at unique
    // keys; the tight loop keeps the large queue pressurized.
    let mut completions = Vec::new();
    for key in 0..LARGE {
        client.send_put(key, &vec![7u8; 1_024], false);
        throttle(&mut client, 128, &mut completions);
    }
    assert!(drain_collect(
        &mut client,
        Duration::from_secs(10),
        &mut completions
    ));

    let totals = client.totals();
    let sheds = registry
        .snapshot()
        .counter("dispatch.sheds")
        .expect("dispatch.sheds registered");
    assert!(sheds > 0, "a 1-deep watermark must shed under a burst");
    assert!(
        totals.overloaded > 0,
        "the client must see the Overloaded replies"
    );
    assert!(
        sheds >= totals.overloaded,
        "every Overloaded reply stems from a shed"
    );

    // No partial application: a shed key reads back NotFound, an acked
    // key reads back Ok. The retry policy never resends either — an
    // Overloaded reply is a completion, not a loss.
    let shed_keys: Vec<u64> = completions
        .iter()
        .filter(|c| c.status == ReplyStatus::Overloaded)
        .map(|c| c.key)
        .take(4)
        .collect();
    let acked_keys: Vec<u64> = completions
        .iter()
        .filter(|c| c.status == ReplyStatus::Ok)
        .map(|c| c.key)
        .take(4)
        .collect();
    assert!(!shed_keys.is_empty() && !acked_keys.is_empty());
    // One GET in flight at a time: a GET of a 1 KiB value is itself a
    // large-class request, and a burst of those would (correctly) shed
    // against the 1-deep watermark. Serial reads see an empty queue.
    let mut reads = Vec::new();
    for &key in shed_keys.iter().chain(&acked_keys) {
        client.send_get(key, false);
        assert!(drain_collect(
            &mut client,
            Duration::from_secs(5),
            &mut reads
        ));
    }
    let verdict: HashMap<u64, ReplyStatus> = reads.iter().map(|c| (c.key, c.status)).collect();
    for key in &shed_keys {
        assert_eq!(
            verdict.get(key),
            Some(&ReplyStatus::NotFound),
            "shed PUT {key} must not have been applied"
        );
    }
    for key in &acked_keys {
        assert_eq!(
            verdict.get(key),
            Some(&ReplyStatus::Ok),
            "acked PUT {key} must be readable"
        );
    }

    // The small class rides through: a sub-threshold PUT completes Ok
    // even while the valve is armed.
    client.send_put(9_999, b"small survives", false);
    assert!(client.drain(Duration::from_secs(5)));
    let small_ok = client.totals();
    assert!(small_ok.completed > totals.completed);

    let drained = server.drain(Duration::from_secs(5));
    server.shutdown();
    assert!(drained);
}
