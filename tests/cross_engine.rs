//! Cross-crate integration tests: every engine, one workload generator,
//! one client, one store substrate.

use minos::baselines::common::BaselineConfig;
use minos::baselines::{HkhServer, HkhWsServer, ShoServer};
use minos::core::client::Client;
use minos::core::engine::KvEngine;
use minos::core::server::{MinosServer, ServerConfig};
use minos::workload::{AccessGenerator, Dataset, Operation, Rng};
use std::time::Duration;

/// Runs a small generated workload against an engine; returns
/// (completed, errors).
fn run_workload(engine: &mut dyn KvEngine, queue_limit: Option<u16>, seed: u64) -> (u64, u64) {
    let mut client = Client::new(engine, 1, seed);
    if let Some(limit) = queue_limit {
        client = client.with_target_queues(0..limit);
    }
    // A scaled dataset with small s_L so the test is quick but still
    // exercises fragmentation.
    let dataset = Dataset::new(500, 5, 0.4, 20_000, seed);
    let gen = AccessGenerator::new(dataset.clone(), 0.01, 0.5, 0.99);
    let mut rng = Rng::new(seed);

    // Preload everything the generator can touch.
    for key in 0..dataset.num_keys() {
        let value = vec![(key % 256) as u8; dataset.size_of(key) as usize];
        client.send_put(key, &value, dataset.is_large_key(key));
        if key % 32 == 31 {
            assert!(client.drain(Duration::from_secs(60)), "preload");
        }
    }
    assert!(client.drain(Duration::from_secs(60)), "preload drain");

    for i in 0..400u64 {
        let spec = gen.next_op(&mut rng);
        match spec.op {
            Operation::Get => client.send_get(spec.key, spec.is_large),
            Operation::Put => {
                let value = vec![(spec.key % 256) as u8; spec.item_size as usize];
                client.send_put(spec.key, &value, spec.is_large);
            }
        }
        if i % 32 == 31 {
            assert!(client.drain(Duration::from_secs(60)), "batch {i}");
        }
    }
    assert!(client.drain(Duration::from_secs(60)), "final drain");
    let t = client.totals();
    assert_eq!(t.outstanding(), 0, "zero loss required");
    (t.completed, t.errors)
}

#[test]
fn minos_serves_generated_workload() {
    let mut server = MinosServer::start(ServerConfig::for_test(4, 2_000));
    let (completed, errors) = run_workload(&mut server, None, 11);
    assert_eq!(completed, 900);
    assert_eq!(errors, 0);
    server.shutdown();
}

#[test]
fn hkh_serves_generated_workload() {
    let mut server = HkhServer::start(BaselineConfig::for_test(4, 2_000));
    let (completed, errors) = run_workload(&mut server, None, 12);
    assert_eq!(completed, 900);
    assert_eq!(errors, 0);
    server.shutdown();
}

#[test]
fn hkh_ws_serves_generated_workload() {
    let mut server = HkhWsServer::start(BaselineConfig::for_test(4, 2_000));
    let (completed, errors) = run_workload(&mut server, None, 13);
    assert_eq!(completed, 900);
    assert_eq!(errors, 0);
    server.shutdown();
}

#[test]
fn sho_serves_generated_workload() {
    let mut server = ShoServer::start(BaselineConfig::for_test(4, 2_000), 2);
    let (completed, errors) = run_workload(&mut server, Some(2), 14);
    assert_eq!(completed, 900);
    assert_eq!(errors, 0);
    server.shutdown();
}

#[test]
fn engines_agree_on_final_store_state() {
    // The same deterministic op sequence must leave identical KV state
    // in Minos and HKH (engine choice must not affect semantics).
    let mut minos = MinosServer::start(ServerConfig::for_test(2, 2_000));
    let mut hkh = HkhServer::start(BaselineConfig::for_test(2, 2_000));
    run_workload(&mut minos, None, 77);
    run_workload(&mut hkh, None, 77);

    let dataset = Dataset::new(500, 5, 0.4, 20_000, 77);
    for key in 0..dataset.num_keys() {
        let a = minos.store().get(key).map(|v| v.len());
        let b = hkh.store().get(key).map(|v| v.len());
        assert_eq!(a, b, "key {key} differs between engines");
    }
    minos.shutdown();
    hkh.shutdown();
}
