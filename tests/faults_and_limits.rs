//! Integration tests of the unhappy paths: fault injection, memory
//! exhaustion, and loss accounting.

use minos::core::client::{Client, RetryPolicy};
use minos::core::engine::KvEngine;
use minos::core::server::{MinosServer, ServerConfig};
use minos::kv::{Store, StoreConfig};
use minos::net::testport::TestPorts;
use minos::net::{FaultProfile, FaultTransport, Transport, UdpConfig, UdpTransport};
use minos::nic::{Delivery, FaultInjector, NicConfig, VirtualNic};
use minos::wire::frag::FragHeader;
use minos::wire::packet::{build_frame, Endpoint};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

// Disjoint from every other suite's range (chaos.rs ends at 29_900).
static PORTS: TestPorts = TestPorts::new(30_000, 31_900);

fn bind_udp_server(num_queues: u16) -> Arc<UdpTransport> {
    loop {
        let base = PORTS.alloc(num_queues);
        if let Ok(t) = UdpTransport::bind(UdpConfig::loopback(base, num_queues)) {
            return Arc::new(t);
        }
    }
}

#[test]
fn client_loss_accounting_sees_drops() {
    // A server whose NIC drops 30% of inbound frames: the client's
    // outstanding count must reflect the loss (the paper discards such
    // runs; the accounting is what makes that possible).
    let mut config = ServerConfig::for_test(2, 1_000);
    config.minos.epoch_ns = 1_000_000_000;
    let mut server = MinosServer::start(config);

    // Deliver frames with a fault injector wedged in between by using
    // the NIC's own fault machinery on a standalone NIC to pre-screen.
    // Simpler: send through the engine, some of which we corrupt first.
    let mut client = Client::new(&server, 1, 5);
    for i in 0..100u64 {
        client.send_put(i, b"value", false);
    }
    // All of these should complete (no faults on the engine NIC).
    assert!(client.drain(Duration::from_secs(30)));
    assert_eq!(client.totals().outstanding(), 0);
    server.shutdown();
}

#[test]
fn faulty_nic_drops_are_visible_and_safe() {
    // Standalone NIC with 100% corruption: nothing is delivered, and
    // nothing malformed gets through either.
    let nic = VirtualNic::new(NicConfig::new(2).with_faults(FaultInjector::new(0.0, 1.0, 3)));
    let src = Endpoint::host(9, 100);
    let dst = Endpoint::host(1, 9000);
    let mut delivered = 0;
    for i in 0..200u32 {
        let frame = build_frame(src, dst, format!("payload {i}").as_bytes());
        if let Delivery::Queued(_) = nic.deliver_frame(frame) {
            delivered += 1;
        }
    }
    assert_eq!(delivered, 0, "corrupted frames never reach a queue");
    assert_eq!(nic.stats().rx_malformed, 200);
}

#[test]
fn store_out_of_memory_is_reported_not_fatal() {
    let store = Store::new(StoreConfig {
        partitions: 2,
        buckets_per_partition: 16,
        overflow_per_partition: 8,
        items_per_partition: 64,
        mempool_bytes: 64 << 10, // 64 KiB budget
        max_value_bytes: 1 << 20,
        capacity: Default::default(),
    });
    // Fill the pool.
    let mut stored = 0u64;
    for k in 0..100u64 {
        if store.put(k, &[0u8; 4096]).is_ok() {
            stored += 1;
        }
    }
    assert!(
        (10..20).contains(&stored),
        "64KiB / 4KiB-class = ~16: {stored}"
    );
    // Delete one, then a put fits again.
    assert!(store.delete(0));
    assert!(store.put(500, &[0u8; 4096]).is_ok());
}

/// Runs the multi-fragment PUT workload over real UDP, optionally
/// through the fault injector, and returns (fault stats, settled
/// mempool `used_bytes`, store items) once the server's round sweep
/// has reclaimed any orphan partials. `settle_to` short-circuits the
/// wait as soon as occupancy matches the clean run's figure.
fn dup_workload(
    profile: Option<FaultProfile>,
    settle_to: Option<usize>,
) -> (minos::net::FaultStats, usize, u64) {
    const KEYS: u64 = 24;
    const LEN: usize = 4_000; // > MAX_FRAG_CHUNK: three fragments on the wire

    let transport = bind_udp_server(2);
    let mut config = ServerConfig::for_test(2, 10_000);
    // Fast round sweep so orphan partials (re-opened by post-completion
    // duplicate fragments) release their reservations within the test.
    config.minos.reassembly_round_ns = 50_000_000;
    let mut server = MinosServer::start_with_transport(config, Arc::clone(&transport));

    let udp = Arc::new(
        UdpTransport::bind_client_with(UdpConfig {
            pool_slots: 4096,
            ..UdpConfig::client(Ipv4Addr::LOCALHOST)
        })
        .unwrap(),
    );
    let endpoint = udp.local_endpoint(0);
    let fault = Arc::new(FaultTransport::new(
        Arc::clone(&udp),
        profile.unwrap_or_default(),
    ));
    let mut client = Client::with_transport(
        Arc::clone(&fault) as Arc<dyn Transport>,
        endpoint,
        transport.local_endpoint(0),
        2,
        7,
        0xD0D0,
    )
    .with_retry(RetryPolicy::new(Duration::from_millis(50), 16));

    for key in 0..KEYS {
        client.send_put(key, &vec![(key as u8) ^ 0x5A; LEN], true);
        while client.totals().outstanding() > 4 {
            client.poll();
        }
    }
    assert!(client.drain(Duration::from_secs(15)));
    let totals = client.totals();
    assert_eq!(totals.errors, 0);
    assert_eq!(totals.completed, KEYS);

    // Every value committed exactly once, intact.
    let store = server.store();
    for key in 0..KEYS {
        let v = store.get(key).expect("acked PUT readable");
        assert_eq!(v.len(), LEN, "key {key}");
        assert!(v.iter().all(|&b| b == (key as u8) ^ 0x5A), "key {key}");
    }
    let stats = store.stats();
    assert_eq!(stats.items, KEYS);
    assert_eq!(stats.put_failures, 0);

    // Let the round sweep reclaim orphan partials, then read occupancy.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let used = loop {
        let used = store.mempool().stats().used_bytes;
        if settle_to == Some(used) || std::time::Instant::now() > deadline {
            break used;
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    let injected = fault.fault_stats();
    server.shutdown();
    (injected, used, stats.items)
}

#[test]
fn duplicated_put_fragments_do_not_double_charge() {
    // Twin runs of the same multi-fragment workload: one clean, one
    // with every other request fragment duplicated in flight
    // (`tx.dup=0.5`). The reassembler must ignore duplicate fragments
    // of in-flight messages (`Streamed::Duplicate`), and any partial a
    // post-completion duplicate re-opens must be swept — so the chaos
    // run ends with byte-identical mempool occupancy: no double-commit,
    // no double-charge, no leaked reservation.
    let (clean_stats, clean_used, clean_items) = dup_workload(None, None);
    assert_eq!(clean_stats.total(), 0, "clean run injects nothing");

    let profile = FaultProfile::parse("tx.dup=0.5,seed=11").unwrap();
    let (injected, dup_used, dup_items) = dup_workload(Some(profile), Some(clean_used));
    assert!(injected.tx_duplicated > 0, "{injected:?}");
    assert_eq!(dup_items, clean_items);
    assert_eq!(
        dup_used, clean_used,
        "duplicated fragments must not change mempool occupancy"
    );
}

#[test]
fn forged_fragments_are_rejected_and_server_stays_up() {
    // Hand-forged datagrams straight at the server's UDP port: headers
    // a real peer can never produce (truncated, index out of range,
    // count inconsistent with msg_len, chunk length mismatch) plus raw
    // garbage. All must be rejected at the reassembly layer without
    // disturbing service.
    let transport = bind_udp_server(2);
    let mut server = MinosServer::start_with_transport(
        ServerConfig::for_test(2, 10_000),
        Arc::clone(&transport),
    );
    let port = transport.local_endpoint(0).port;
    let sock = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    let dst = format!("127.0.0.1:{port}");

    let forged = |header: FragHeader, payload_len: usize| {
        let mut buf = bytes::BytesMut::new();
        header.encode(&mut buf);
        buf.extend_from_slice(&vec![0xEEu8; payload_len]);
        buf.freeze()
    };
    for i in 0..50u64 {
        // Truncated: fewer bytes than a fragment header.
        sock.send_to(&[0xAB; 7], &dst).unwrap();
        // index >= count: rejected at header decode.
        sock.send_to(
            &forged(
                FragHeader {
                    msg_id: i,
                    index: 9,
                    count: 3,
                    msg_len: 4_000,
                },
                100,
            ),
            &dst,
        )
        .unwrap();
        // count disagrees with msg_len's fragment arithmetic.
        sock.send_to(
            &forged(
                FragHeader {
                    msg_id: 1_000 + i,
                    index: 0,
                    count: 7,
                    msg_len: 64,
                },
                64,
            ),
            &dst,
        )
        .unwrap();
        // Plausible header, wrong chunk length for that index.
        sock.send_to(
            &forged(
                FragHeader {
                    msg_id: 2_000 + i,
                    index: 0,
                    count: 3,
                    msg_len: 4_000,
                },
                32,
            ),
            &dst,
        )
        .unwrap();
        // Raw garbage past header length.
        sock.send_to(&[i as u8; 80], &dst).unwrap();
    }

    // The store never saw a commit, and a real client still gets
    // ordinary service on the same socket set.
    let udp =
        Arc::new(UdpTransport::bind_client_with(UdpConfig::client(Ipv4Addr::LOCALHOST)).unwrap());
    let endpoint = udp.local_endpoint(0);
    let mut client = Client::with_transport(
        Arc::clone(&udp) as Arc<dyn Transport>,
        endpoint,
        transport.local_endpoint(0),
        2,
        8,
        0xF06D,
    )
    .with_retry(RetryPolicy::new(Duration::from_millis(50), 16));
    client.send_put(42, b"still serving", false);
    assert!(client.drain(Duration::from_secs(10)));
    let store = server.store();
    assert_eq!(&store.get(42).unwrap()[..], b"still serving");
    assert_eq!(store.stats().items, 1, "no forged fragment ever committed");
    server.shutdown();
}

#[test]
fn server_survives_garbage_frames() {
    let mut server = MinosServer::start(ServerConfig::for_test(2, 1_000));
    let nic = server.nic();
    // Blast garbage at the NIC: all dropped at parse.
    for i in 0..100u8 {
        nic.deliver_frame(bytes::Bytes::from(vec![i; 60]));
    }
    // The server still works.
    let mut client = Client::new(&server, 1, 6);
    client.send_put(1, b"still alive", false);
    assert!(client.drain(Duration::from_secs(20)));
    assert_eq!(&server.store().get(1).unwrap()[..], b"still alive");
    server.shutdown();
}
