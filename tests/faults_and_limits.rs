//! Integration tests of the unhappy paths: fault injection, memory
//! exhaustion, and loss accounting.

use minos::core::client::Client;
use minos::core::engine::KvEngine;
use minos::core::server::{MinosServer, ServerConfig};
use minos::kv::{Store, StoreConfig};
use minos::nic::{Delivery, FaultInjector, NicConfig, VirtualNic};
use minos::wire::packet::{build_frame, Endpoint};
use std::time::Duration;

#[test]
fn client_loss_accounting_sees_drops() {
    // A server whose NIC drops 30% of inbound frames: the client's
    // outstanding count must reflect the loss (the paper discards such
    // runs; the accounting is what makes that possible).
    let mut config = ServerConfig::for_test(2, 1_000);
    config.minos.epoch_ns = 1_000_000_000;
    let mut server = MinosServer::start(config);

    // Deliver frames with a fault injector wedged in between by using
    // the NIC's own fault machinery on a standalone NIC to pre-screen.
    // Simpler: send through the engine, some of which we corrupt first.
    let mut client = Client::new(&server, 1, 5);
    for i in 0..100u64 {
        client.send_put(i, b"value", false);
    }
    // All of these should complete (no faults on the engine NIC).
    assert!(client.drain(Duration::from_secs(30)));
    assert_eq!(client.totals().outstanding(), 0);
    server.shutdown();
}

#[test]
fn faulty_nic_drops_are_visible_and_safe() {
    // Standalone NIC with 100% corruption: nothing is delivered, and
    // nothing malformed gets through either.
    let nic = VirtualNic::new(NicConfig::new(2).with_faults(FaultInjector::new(0.0, 1.0, 3)));
    let src = Endpoint::host(9, 100);
    let dst = Endpoint::host(1, 9000);
    let mut delivered = 0;
    for i in 0..200u32 {
        let frame = build_frame(src, dst, format!("payload {i}").as_bytes());
        if let Delivery::Queued(_) = nic.deliver_frame(frame) {
            delivered += 1;
        }
    }
    assert_eq!(delivered, 0, "corrupted frames never reach a queue");
    assert_eq!(nic.stats().rx_malformed, 200);
}

#[test]
fn store_out_of_memory_is_reported_not_fatal() {
    let store = Store::new(StoreConfig {
        partitions: 2,
        buckets_per_partition: 16,
        overflow_per_partition: 8,
        items_per_partition: 64,
        mempool_bytes: 64 << 10, // 64 KiB budget
        max_value_bytes: 1 << 20,
        capacity: Default::default(),
    });
    // Fill the pool.
    let mut stored = 0u64;
    for k in 0..100u64 {
        if store.put(k, &[0u8; 4096]).is_ok() {
            stored += 1;
        }
    }
    assert!(
        (10..20).contains(&stored),
        "64KiB / 4KiB-class = ~16: {stored}"
    );
    // Delete one, then a put fits again.
    assert!(store.delete(0));
    assert!(store.put(500, &[0u8; 4096]).is_ok());
}

#[test]
fn server_survives_garbage_frames() {
    let mut server = MinosServer::start(ServerConfig::for_test(2, 1_000));
    let nic = server.nic();
    // Blast garbage at the NIC: all dropped at parse.
    for i in 0..100u8 {
        nic.deliver_frame(bytes::Bytes::from(vec![i; 60]));
    }
    // The server still works.
    let mut client = Client::new(&server, 1, 6);
    client.send_put(1, b"still alive", false);
    assert!(client.drain(Duration::from_secs(20)));
    assert_eq!(&server.store().get(1).unwrap()[..], b"still alive");
    server.shutdown();
}
