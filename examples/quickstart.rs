//! Quickstart: start a Minos server, store and fetch items of wildly
//! different sizes, and watch size-aware sharding do its job — first
//! over the in-process virtual NIC, then over *real* UDP sockets on
//! loopback. Both halves run the identical engine through the
//! `minos_net::Transport` abstraction.
//!
//! Run with: `cargo run --release --example quickstart`

use minos::core::client::Client;
use minos::core::server::{MinosServer, ServerConfig};
use minos::net::{Transport, UdpConfig, UdpTransport, VirtualClientTransport};
use minos::nic::{NicConfig, VirtualNic};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    println!("== Minos quickstart ==\n");

    // ---- Part 1: the virtual-NIC transport (simulation substrate) ----
    //
    // A 4-core server: every core gets an RX/TX queue pair. Clients
    // steer packets to queues through UDP destination ports, exactly
    // like Flow Director steering on real hardware. The transport is
    // constructed explicitly here; `MinosServer::start` does the same
    // wiring for you.
    let config = ServerConfig::for_test(4, 10_000);
    let nic = Arc::new(VirtualNic::new(
        NicConfig::new(4).with_queue_capacity(config.nic_queue_capacity),
    ));
    let mut server = MinosServer::start_with_transport(config, Arc::clone(&nic));

    // The client rides the same Transport trait: its adapter feeds
    // frames through the NIC's checksummed receive path and drains
    // replies from the server's TX rings.
    let client_endpoint = minos::wire::packet::Endpoint::host(101, 20_001);
    let client_transport: Arc<dyn Transport> = Arc::new(VirtualClientTransport::new(
        Arc::clone(&nic),
        client_endpoint,
    ));
    let mut client = Client::with_transport(
        client_transport,
        client_endpoint,
        Transport::local_endpoint(&*nic, 0),
        Transport::num_queues(&*nic),
        1,
        42,
    );

    // Store a tiny, a small and a large item. The large PUT fragments
    // into ~35 packets on the wire and is reassembled by a large core.
    let tiny = b"42".to_vec();
    let small = vec![b's'; 1_000];
    let large = vec![b'L'; 50_000];

    client.send_put(1, &tiny, false);
    client.send_put(2, &small, false);
    client.send_put(3, &large, true);
    assert!(client.drain(Duration::from_secs(30)), "puts complete");
    println!(
        "stored: tiny={}B small={}B large={}B",
        tiny.len(),
        small.len(),
        large.len()
    );

    // Read them back. GETs go to uniformly random RX queues; the server
    // classifies each by *stored item size* and either answers on the
    // receiving small core or hands off to a large core.
    for key in [1u64, 2, 3] {
        client.send_get(key, key == 3);
    }
    assert!(client.drain(Duration::from_secs(30)), "gets complete");

    let totals = client.totals();
    println!(
        "completed {} ops, {} errors, {} outstanding (zero loss)",
        totals.completed,
        totals.errors,
        totals.outstanding()
    );

    // Inspect the sharding plan the control loop derived.
    server.force_epoch();
    let plan = server.plan();
    println!("\nsharding plan after one epoch:");
    println!("  size threshold : {} bytes", plan.decision.threshold);
    println!(
        "  small cores    : {:?} (handle everything <= threshold)",
        plan.allocation.small_cores()
    );
    println!(
        "  handoff cores  : {:?} (standby: {})",
        plan.allocation.handoff_cores(),
        plan.allocation.standby
    );

    let stats = server.core_stats();
    let handoffs: u64 = stats.iter().map(|s| s.handoffs).sum();
    println!("  handoffs so far: {handoffs} (the large GET/PUT went through a software queue)");

    let q = client.latency().quantiles().expect("latencies recorded");
    println!("\nclient latency (virtual): {q}");
    server.shutdown();

    // ---- Part 2: the same engine over real UDP sockets ----
    //
    // One SO_REUSEPORT socket per core on consecutive loopback ports;
    // the kernel's port demux now plays the NIC's dispatch role. This
    // is exactly what the `minos-server` / `minos-loadgen` binaries do.
    println!("\n== and now over real UDP on 127.0.0.1 ==\n");
    let udp = (9400..9900)
        .step_by(16)
        .find_map(|base| UdpTransport::bind(UdpConfig::loopback(base, 2)).ok())
        .map(Arc::new)
        .expect("a free loopback port range");
    println!(
        "server listening on 127.0.0.1:{}..{}",
        udp.base_port(),
        udp.base_port() + 1
    );
    let mut udp_server =
        MinosServer::start_with_transport(ServerConfig::for_test(2, 10_000), Arc::clone(&udp));

    let client_udp = Arc::new(UdpTransport::bind_client(Ipv4Addr::LOCALHOST).unwrap());
    let endpoint = client_udp.local_endpoint(0);
    let mut udp_client = Client::with_transport(
        client_udp as Arc<dyn Transport>,
        endpoint,
        udp.local_endpoint(0),
        2,
        7,
        1234,
    );

    udp_client.send_put(10, &large, true);
    assert!(
        udp_client.drain(Duration::from_secs(10)),
        "UDP PUT completes"
    );
    udp_client.send_get(10, true);
    assert!(
        udp_client.drain(Duration::from_secs(10)),
        "UDP GET completes"
    );
    let t = udp_client.totals();
    println!(
        "real-UDP roundtrip: {} ops completed, {} errors, {} outstanding",
        t.completed,
        t.errors,
        t.outstanding()
    );
    let s = Transport::stats(&*udp);
    println!(
        "server transport saw {} rx / {} tx real datagrams (the 50 KB item fragmented)",
        s.rx_packets, s.tx_packets
    );
    udp_server.shutdown();

    println!("\ndone.");
}
