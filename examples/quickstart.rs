//! Quickstart: start a Minos server, store and fetch items of wildly
//! different sizes, and watch size-aware sharding do its job.
//!
//! Run with: `cargo run --release --example quickstart`

use minos::core::client::Client;
use minos::core::engine::KvEngine;
use minos::core::server::{MinosServer, ServerConfig};
use std::time::Duration;

fn main() {
    println!("== Minos quickstart ==\n");

    // A 4-core server: every core gets an RX/TX queue pair on the
    // virtual NIC; clients steer packets to queues through UDP ports,
    // exactly like Flow Director steering on real hardware.
    let mut server = MinosServer::start(ServerConfig::for_test(4, 10_000));
    let mut client = Client::new(&server, 1, 42);

    // Store a tiny, a small and a large item. The large PUT fragments
    // into ~35 packets on the wire and is reassembled by a large core.
    let tiny = b"42".to_vec();
    let small = vec![b's'; 1_000];
    let large = vec![b'L'; 50_000];

    client.send_put(1, &tiny, false);
    client.send_put(2, &small, false);
    client.send_put(3, &large, true);
    assert!(client.drain(Duration::from_secs(30)), "puts complete");
    println!("stored: tiny={}B small={}B large={}B", tiny.len(), small.len(), large.len());

    // Read them back. GETs go to uniformly random RX queues; the server
    // classifies each by *stored item size* and either answers on the
    // receiving small core or hands off to a large core.
    for key in [1u64, 2, 3] {
        client.send_get(key, key == 3);
    }
    assert!(client.drain(Duration::from_secs(30)), "gets complete");

    let totals = client.totals();
    println!(
        "\ncompleted {} ops, {} errors, {} outstanding (zero loss)",
        totals.completed, totals.errors, totals.outstanding()
    );

    // Inspect the sharding plan the control loop derived.
    server.force_epoch();
    let plan = server.plan();
    println!("\nsharding plan after one epoch:");
    println!("  size threshold : {} bytes", plan.decision.threshold);
    println!(
        "  small cores    : {:?} (handle everything <= threshold)",
        plan.allocation.small_cores()
    );
    println!(
        "  handoff cores  : {:?} (standby: {})",
        plan.allocation.handoff_cores(),
        plan.allocation.standby
    );

    let stats = server.core_stats();
    let handoffs: u64 = stats.iter().map(|s| s.handoffs).sum();
    println!("  handoffs so far: {handoffs} (the large GET/PUT went through a software queue)");

    let q = client.latency().quantiles().expect("latencies recorded");
    println!("\nclient latency: {q}");

    server.shutdown();
    println!("\ndone.");
}
