//! The Section 2.2 intuition, live: even a 0.125 % sliver of requests
//! that are 1000x slower wrecks the 99th percentile of every
//! size-unaware dispatching strategy.
//!
//! Run with: `cargo run --release --example queueing_intuition`

use minos::queue_sim::{run_model, Bimodal, Model};

fn main() {
    println!("== why size-unaware sharding fails (Figure 2 intuition) ==\n");
    println!(
        "workload: 99.875% of requests cost 1 unit, 0.125% cost K units;\n\
         8 cores; p99 response time in units of the small service time.\n"
    );

    let measured = 120_000;
    let warmup = 20_000;

    for model in Model::ALL {
        println!("--- {} ---", model.label());
        println!(
            "{:>6}  {:>8}  {:>8}  {:>8}",
            "load", "K=1", "K=100", "K=1000"
        );
        for load in [0.2, 0.4, 0.6, 0.8] {
            print!("{load:>6.1}");
            for k in [1u64, 100, 1000] {
                let r = run_model(model, 8, Bimodal::paper(k), load, warmup, measured, 7);
                print!("  {:>8.1}", r.p99_units);
            }
            println!();
        }
        println!();
    }

    println!(
        "Reading: with K=1 every strategy keeps p99 at a few service\n\
         times. Add 0.125% of K=1000 requests and p99 inflates by one to\n\
         two orders of magnitude — head-of-line blocking that late\n\
         binding and stealing reduce but cannot eliminate. Minos avoids\n\
         it by construction: small requests never share a core with\n\
         large ones (see `cargo bench --bench fig3_default`)."
    );
}
