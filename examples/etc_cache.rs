//! An ETC-like cache workload (the paper's motivating scenario): a
//! Facebook-style trimodal size distribution with zipfian popularity,
//! served by the threaded Minos engine.
//!
//! Run with: `cargo run --release --example etc_cache`

use minos::core::client::Client;
use minos::core::server::{MinosServer, ServerConfig};
use minos::workload::{AccessGenerator, Dataset, Operation, Rng, DEFAULT_PROFILE};
use std::time::Duration;

fn main() {
    println!("== ETC-like cache on Minos ==\n");

    // The paper's dataset scaled 1:4000 so the threaded store fits a
    // laptop: ~4000 keys, 10 large, 40% tiny / 60% small, s_L = 500 KB.
    let dataset = Dataset::paper_scaled(4_000, DEFAULT_PROFILE.large_max);
    println!(
        "dataset: {} keys ({} large), sizes 1B..{}KB",
        dataset.num_keys(),
        dataset.num_large(),
        DEFAULT_PROFILE.large_max / 1_000
    );

    let mut server = MinosServer::start(ServerConfig::for_test(4, dataset.num_keys() as usize * 2));
    let mut client = Client::new(&server, 1, 7);

    // Preload every key at its dataset-assigned size.
    let t0 = std::time::Instant::now();
    for key in 0..dataset.num_keys() {
        let size = dataset.size_of(key) as usize;
        let value = vec![(key % 251) as u8; size];
        client.send_put(key, &value, dataset.is_large_key(key));
        if key % 64 == 63 {
            assert!(client.drain(Duration::from_secs(60)), "preload");
        }
    }
    assert!(client.drain(Duration::from_secs(120)), "preload done");
    println!(
        "preloaded {} items in {:.1}s ({} bytes pooled)\n",
        dataset.num_keys(),
        t0.elapsed().as_secs_f64(),
        server.store().mempool().used_bytes()
    );

    // Run the paper's default mix: 95:5 GET:PUT, zipf(0.99) keys,
    // p_L = 0.125 %.
    let gen = AccessGenerator::new(
        dataset,
        DEFAULT_PROFILE.p_large,
        DEFAULT_PROFILE.get_ratio,
        DEFAULT_PROFILE.zipf_s,
    );
    let mut rng = Rng::new(99);
    let ops = 3_000;
    let mut gets = 0u64;
    let mut puts = 0u64;
    let mut large = 0u64;
    for i in 0..ops {
        let spec = gen.next_op(&mut rng);
        match spec.op {
            Operation::Get => gets += 1,
            Operation::Put => puts += 1,
        }
        if spec.is_large {
            large += 1;
        }
        client.send(&spec);
        if i % 32 == 31 {
            assert!(client.drain(Duration::from_secs(60)), "batch");
        }
    }
    assert!(client.drain(Duration::from_secs(120)), "drain");

    let totals = client.totals();
    println!("ran {ops} ops: {gets} GETs, {puts} PUTs, {large} on large items");
    println!(
        "completed={} errors={} outstanding={}",
        totals.completed,
        totals.errors,
        totals.outstanding()
    );
    println!("latency: {}", client.latency().quantiles().unwrap());

    server.force_epoch();
    let plan = server.plan();
    println!(
        "\nplan: threshold={}B, {} small / {} large cores (standby: {})",
        plan.decision.threshold,
        plan.allocation.n_small,
        plan.allocation.n_large,
        plan.allocation.standby
    );
    println!("\nper-core load (ops | packets | handoffs):");
    for (i, s) in server.core_stats().iter().enumerate() {
        println!(
            "  core {i}: {:>6} | {:>7} | {:>5}",
            s.ops,
            s.packets(),
            s.handoffs
        );
    }
    server.shutdown();
}
