//! The Figure 10 scenario in the simulator: the fraction of large
//! requests steps up and back down while Minos re-allocates cores on
//! the fly, with HKH+WS shown for contrast.
//!
//! Run with: `cargo run --release --example dynamic_adaptation`

use minos::sim::{runner, RunConfig, System};
use minos::workload::{PhaseSchedule, DEFAULT_PROFILE};

fn main() {
    println!("== dynamic workload adaptation (Figure 10 scenario) ==\n");

    // p_L steps 0.125 -> 0.25 -> 0.5 -> 0.75 -> 0.5 -> 0.25 -> 0.125 %
    // with 3-second phases (the paper uses 20 s; the controller adapts
    // within a couple of epochs either way).
    let phase_ns = 3_000_000_000u64;
    let steps_pct = [0.125, 0.25, 0.5, 0.75, 0.5, 0.25, 0.125];
    let schedule = PhaseSchedule::new(steps_pct.iter().map(|&p| (phase_ns, p / 100.0)).collect());
    let total_s = (phase_ns as f64 * steps_pct.len() as f64) / 1e9;

    // The paper drives 2.25 Mops; our calibrated NIC caps at ~2.1 Mops
    // when p_L = 0.75 %, so 2.0 Mops is the equivalent "high load".
    let mut results = Vec::new();
    for system in [System::Minos, System::HkhWs] {
        println!(
            "simulating {} for {:.0}s at 2.0 Mops...",
            system.label(),
            total_s
        );
        let mut cfg = RunConfig::new(system, DEFAULT_PROFILE, 2.0);
        cfg.duration_s = total_s;
        cfg.warmup_s = 0.0;
        cfg.schedule = Some(schedule.clone());
        cfg.window_s = 1.0;
        cfg.system.epoch_ns = 500_000_000;
        results.push(runner::run(&cfg));
    }

    println!(
        "\n{:>6} {:>8} | {:>12} {:>12} | {:>11}",
        "t (s)", "pL (%)", "Minos p99us", "HKHWS p99us", "large cores"
    );
    let n = results[0].windows.len().min(results[1].windows.len());
    for i in 0..n {
        let m = &results[0].windows[i];
        let w = &results[1].windows[i];
        let pl = schedule.value_at((m.t_s * 1e9) as u64) * 100.0;
        println!(
            "{:>6.0} {:>8.3} | {:>12.1} {:>12.1} | {:>11}",
            m.t_s, pl, m.p99_us, w.p99_us, m.n_large_cores
        );
    }
    println!(
        "\nNote how the large-core count tracks p_L and Minos' p99 stays \
         orders of magnitude below HKH+WS' during the high-p_L phases."
    );
}
