//! All four threaded engines serve the same mixed-size burst through
//! the same client code — the functional counterpart of the paper's
//! "same codebase" comparison (absolute timing on a laptop is not the
//! point; identical behaviour is).
//!
//! Run with: `cargo run --release --example baseline_shootout`

use minos::baselines::common::BaselineConfig;
use minos::baselines::{HkhServer, HkhWsServer, ShoServer};
use minos::core::client::Client;
use minos::core::engine::KvEngine;
use minos::core::server::{MinosServer, ServerConfig};
use std::time::Duration;

fn exercise(engine: &mut dyn KvEngine, queue_limit: Option<u16>) {
    let mut client = Client::new(engine, 1, 1234);
    if let Some(limit) = queue_limit {
        client = client.with_target_queues(0..limit);
    }

    let t0 = std::time::Instant::now();
    // A burst of small writes, a few large ones, then reads of all.
    for i in 0..200u64 {
        client.send_put(
            i,
            &vec![(i % 251) as u8; 64 + (i as usize * 7) % 1_300],
            false,
        );
        if i % 32 == 31 {
            assert!(client.drain(Duration::from_secs(60)));
        }
    }
    for i in 0..4u64 {
        client.send_put(1_000 + i, &vec![b'X'; 40_000], true);
        assert!(client.drain(Duration::from_secs(60)));
    }
    for i in 0..200u64 {
        client.send_get(i, false);
        if i % 32 == 31 {
            assert!(client.drain(Duration::from_secs(60)));
        }
    }
    for i in 0..4u64 {
        client.send_get(1_000 + i, true);
    }
    assert!(client.drain(Duration::from_secs(60)));

    let totals = client.totals();
    let stats = engine.core_stats();
    let handoffs: u64 = stats.iter().map(|s| s.handoffs).sum();
    let steals: u64 = stats.iter().map(|s| s.steals).sum();
    println!(
        "{:>7}: {} ops ok, errors={}, handoffs={handoffs}, steals={steals}, wall={:?}",
        engine.name(),
        totals.completed,
        totals.errors,
        t0.elapsed()
    );
    println!("         latency {}", client.latency().quantiles().unwrap());
}

fn main() {
    println!("== the four engines, one workload ==\n");

    let mut minos = MinosServer::start(ServerConfig::for_test(3, 10_000));
    exercise(&mut minos, None);
    minos.shutdown();

    let mut hkh = HkhServer::start(BaselineConfig::for_test(3, 10_000));
    exercise(&mut hkh, None);
    hkh.shutdown();

    let mut ws = HkhWsServer::start(BaselineConfig::for_test(3, 10_000));
    exercise(&mut ws, None);
    ws.shutdown();

    // SHO clients may only target the handoff core's queue.
    let mut sho = ShoServer::start(BaselineConfig::for_test(3, 10_000), 1);
    exercise(&mut sho, Some(1));
    sho.shutdown();

    println!(
        "\nAll four engines served the identical workload through the \
         identical client, store and wire stack."
    );
}
