//! Rate sweeps over real UDP: the machinery behind `minos-figures`.
//!
//! Reproduces the paper's evaluation shape (§5.3–5.4): the same
//! open-loop workload is offered to size-aware sharding (Minos) and to
//! the size-unaware baselines (HKH, SHO) at a ladder of rates climbing
//! up to and past the saturation knee, and every `(policy, rate)` point
//! reports throughput, loss, and the latency tail — p50/p99/p99.9/
//! p99.99 — measured from each request's *scheduled* arrival, so a
//! sweep point past the knee honestly shows the queueing delay the
//! overload causes instead of coordinated-omission-filtered service
//! times.
//!
//! Everything runs in one process over real SO_REUSEPORT UDP sockets:
//! the server under test binds one socket per core at
//! `base_port + queue`, client threads bind ephemeral sockets, and a
//! barrier releases all client schedules at once so the offered rate is
//! what the point claims. One [`SweepPoint`] is emitted per (policy,
//! discipline, rate), serialized as JSON by [`SweepPoint::to_json`] and parseable
//! back by [`SweepPoint::parse`] — the committed `BENCH_fig_*.json`
//! files and the CI perf-smoke gates both speak this schema.

use crate::baselines::common::BaselineConfig;
use crate::baselines::hkh::HkhServer;
use crate::baselines::sho::ShoServer;
use crate::core::client::{Client, HedgePolicy, RetryPolicy};
use crate::core::dispatch::DisciplineKind;
use crate::core::server::{MinosServer, ServerConfig};
use crate::kv::{CapacityConfig, EvictionPolicy};
use crate::net::{endpoint_for, FaultProfile, FaultTransport, Transport, UdpConfig, UdpTransport};
use crate::obs::JsonValue;
use crate::report::{quantiles_json, JsonObj};
use crate::stats::{LatencyHistogram, Quantiles};
use crate::workload::{
    AccessGenerator, ChurnConfig, ChurnGenerator, Dataset, OpSpec, OpenLoop, Profile, Rng,
    DEFAULT_PROFILE,
};
use std::net::Ipv4Addr;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Which engine serves a sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Size-aware sharding (the paper's system).
    Minos,
    /// Hardware keyhash sharding, run-to-completion (nxM/G/1, as MICA).
    Hkh,
    /// Software handoff through dispatch cores (M/G/n, as RAMCloud).
    Sho,
}

impl Policy {
    /// All sweepable policies, in report order.
    pub const ALL: [Policy; 3] = [Policy::Minos, Policy::Hkh, Policy::Sho];

    /// The canonical name used in `SweepPoint.policy`.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Minos => "minos",
            Policy::Hkh => "hkh",
            Policy::Sho => "sho",
        }
    }

    /// Inverse of [`Policy::name`].
    pub fn from_name(name: &str) -> Option<Policy> {
        match name {
            "minos" => Some(Policy::Minos),
            "hkh" => Some(Policy::Hkh),
            "sho" => Some(Policy::Sho),
            _ => None,
        }
    }
}

/// One sweep's shape: which policies, which rates, and the fixed
/// workload/topology every point shares.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Engines to sweep (each gets its own server over its own ports).
    pub policies: Vec<Policy>,
    /// Offered rates in requests/second, swept in order per policy.
    /// Ascending order is conventional (the knee reads left to right)
    /// but not required.
    pub rates: Vec<f64>,
    /// Queue disciplines to sweep on the Minos engine — each runs its
    /// own server instance over its own ports. The baselines (HKH, SHO)
    /// have exactly one builtin dispatch and ignore this list; their
    /// points carry the discipline label `"builtin"`.
    pub disciplines: Vec<DisciplineKind>,
    /// Server cores = UDP RX queues per server.
    pub cores: usize,
    /// SHO dispatch cores (clients then target only queues
    /// `0..sho_handoff`).
    pub sho_handoff: usize,
    /// Client threads; each runs an independent open loop at
    /// `rate / clients` on its own socket.
    pub clients: u16,
    /// Measured duration of each point.
    pub duration: Duration,
    /// Dataset size in keys.
    pub keys: u64,
    /// Number of large keys in the dataset.
    pub large_keys: u64,
    /// Workload mix (GET ratio, `p_large`, sizes, skew).
    pub profile: Profile,
    /// RNG seed; every point reuses the same schedule seeds so policies
    /// see identical workloads.
    pub seed: u64,
    /// Queue-0 UDP port of the first server instance; instance `i` of
    /// the `(policy × discipline)` enumeration binds `cores` ports from
    /// `base_port + i * cores`.
    pub base_port: u16,
    /// How long each point may wait for in-flight replies after its
    /// measured window closes.
    pub drain_timeout: Duration,
    /// Churn mode: when set, the sweep offers the churn workload (a
    /// working set outgrowing `mempool_bytes`) to one Minos instance
    /// per configured eviction policy instead of the paper profile.
    pub churn: Option<ChurnSweepSpec>,
    /// Chaos mode: a [`FaultProfile`] grammar string (see
    /// [`FaultProfile::parse`]). When set, every *measured* client's
    /// transport is wrapped in a deterministic fault injector (the
    /// preload stays clean) and the spec is recorded in each point —
    /// pair it with [`SweepConfig::retry`] so injected drops surface as
    /// retries and bounded `timed_out` loss instead of voiding every
    /// point's zero-loss verdict.
    pub fault_profile: Option<String>,
    /// Hedged requests on measured clients: a small request unanswered
    /// past the adaptive hedge delay is duplicated to another RX queue,
    /// first reply wins. The dial the hedging figure flips.
    pub hedge: bool,
    /// Client-side retry policy for measured clients (typically set
    /// together with `fault_profile`).
    pub retry: Option<RetryPolicy>,
}

/// The churn-sweep dials: how tight the mempool is and which eviction
/// policies compete over it.
#[derive(Clone, Debug)]
pub struct ChurnSweepSpec {
    /// Server mempool budget in bytes — sized *below* the churn working
    /// set, or there is nothing to evict.
    pub mempool_bytes: usize,
    /// Eviction policies to sweep; each gets its own server instance.
    pub evictions: Vec<EvictionPolicy>,
    /// Smallest churn value in bytes.
    pub value_min: u64,
    /// Largest churn value in bytes (inclusive; keep below the
    /// admission cutoff for a reject-free run).
    pub value_max: u64,
    /// TTL stamped on every churn PUT (0 = never expires).
    pub ttl_ms: u64,
}

impl ChurnSweepSpec {
    /// The churn generator config this spec induces under `cfg`'s keys,
    /// profile, and seed.
    fn generator_config(&self, cfg: &SweepConfig) -> ChurnConfig {
        ChurnConfig {
            num_keys: cfg.keys,
            value_min: self.value_min,
            value_max: self.value_max,
            zipf_s: cfg.profile.zipf_s,
            get_ratio: cfg.profile.get_ratio,
            ttl_ms: self.ttl_ms,
            salt: cfg.seed,
        }
    }
}

impl SweepConfig {
    /// A small loopback sweep: 2 cores, 1 client, the default profile.
    /// Callers override `rates` (and anything else) to taste.
    pub fn loopback(base_port: u16, rates: Vec<f64>) -> Self {
        SweepConfig {
            policies: Policy::ALL.to_vec(),
            rates,
            disciplines: vec![DisciplineKind::SizeAware],
            cores: 2,
            sho_handoff: 1,
            clients: 1,
            duration: Duration::from_secs(2),
            keys: 2_000,
            large_keys: 8,
            profile: DEFAULT_PROFILE,
            seed: 42,
            base_port,
            drain_timeout: Duration::from_secs(5),
            churn: None,
            fault_profile: None,
            hedge: false,
            retry: None,
        }
    }

    fn validate(&self) {
        if let Some(spec) = &self.fault_profile {
            if let Err(e) = FaultProfile::parse(spec) {
                panic!("fault_profile {spec:?}: {e}");
            }
        }
        assert!(!self.policies.is_empty(), "at least one policy");
        assert!(!self.rates.is_empty(), "at least one rate");
        assert!(!self.disciplines.is_empty(), "at least one discipline");
        if let Some(churn) = &self.churn {
            assert!(
                self.policies.iter().all(|&p| p == Policy::Minos),
                "churn sweeps compare eviction policies on the Minos engine only"
            );
            assert!(!churn.evictions.is_empty(), "at least one eviction policy");
            assert!(churn.value_min > 0 && churn.value_min <= churn.value_max);
        }
        assert!(self.cores >= 1, "at least one core");
        assert!(self.clients >= 1, "at least one client");
        assert!(
            self.sho_handoff >= 1 && (self.cores == 1 || self.sho_handoff < self.cores),
            "SHO needs at least one handoff core and one worker"
        );
        assert!(
            self.rates.iter().all(|r| *r > 0.0),
            "rates must be positive"
        );
        let ports = self.instances().len() * self.cores;
        assert!(
            usize::from(self.base_port) + ports <= usize::from(u16::MAX),
            "port range {}+{} exceeds the u16 port space",
            self.base_port,
            ports
        );
    }

    /// The server instances this sweep runs, in port order: every
    /// configured discipline of the Minos engine (crossed with every
    /// eviction policy in churn mode), and one builtin instance per
    /// baseline policy.
    fn instances(&self) -> Vec<(Policy, Option<DisciplineKind>, EvictionPolicy)> {
        let evictions: &[EvictionPolicy] = match &self.churn {
            Some(c) => &c.evictions,
            None => &[EvictionPolicy::None],
        };
        let mut out = Vec::new();
        for &policy in &self.policies {
            match policy {
                Policy::Minos => {
                    for &d in &self.disciplines {
                        out.extend(evictions.iter().map(|&ev| (policy, Some(d), ev)));
                    }
                }
                Policy::Hkh | Policy::Sho => out.push((policy, None, EvictionPolicy::None)),
            }
        }
        out
    }
}

/// The discipline label of a baseline policy's single built-in
/// dispatch, used in `SweepPoint.discipline` (and as the parse default
/// for pre-discipline sweep files).
pub const BUILTIN_DISCIPLINE: &str = "builtin";

/// The eviction label of a classic (non-churn) sweep point, and the
/// parse default for pre-capacity sweep files.
pub const NO_EVICTION: &str = "none";

/// The fault-profile label of a clean-transport sweep point, and the
/// parse default for pre-chaos sweep files.
pub const NO_FAULTS: &str = "none";

fn discipline_label(discipline: Option<DisciplineKind>) -> &'static str {
    discipline
        .map(DisciplineKind::name)
        .unwrap_or(BUILTIN_DISCIPLINE)
}

/// The `(policy, discipline, rate)` identity of a sweep point —
/// `--resume` skips a point when an already-written point has the same
/// key. The rate is compared at the writer's one-decimal precision.
pub fn point_key(policy: &str, discipline: &str, offered_rate: f64) -> String {
    point_key_ev(policy, discipline, NO_EVICTION, offered_rate)
}

/// [`point_key`] with the eviction-policy dimension: churn-sweep points
/// append `+{eviction}` so `clock` and `size-aware-clock` runs of the
/// same engine and rate stay distinct under `--resume`. Classic points
/// (`eviction == "none"`) keep their historical key unchanged.
pub fn point_key_ev(policy: &str, discipline: &str, eviction: &str, offered_rate: f64) -> String {
    point_key_chaos(policy, discipline, eviction, NO_FAULTS, false, offered_rate)
}

/// [`point_key_ev`] with the chaos dimensions: fault-injected points
/// append `+fault:{spec}` and hedged points `+hedge`, so the
/// fault × hedging grid of one engine and rate stays distinct under
/// `--resume`. Clean, unhedged points keep their historical key
/// unchanged.
pub fn point_key_chaos(
    policy: &str,
    discipline: &str,
    eviction: &str,
    fault_profile: &str,
    hedging: bool,
    offered_rate: f64,
) -> String {
    let mut tags = String::new();
    if eviction != NO_EVICTION {
        tags.push_str(&format!("+{eviction}"));
    }
    if fault_profile != NO_FAULTS {
        tags.push_str(&format!("+fault:{fault_profile}"));
    }
    if hedging {
        tags.push_str("+hedge");
    }
    format!("{policy}/{discipline}{tags}@{offered_rate:.1}")
}

/// One measured `(policy, offered rate)` point — the JSON record schema
/// of the committed `BENCH_fig_*.json` files.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepPoint {
    /// Engine name ([`Policy::name`]).
    pub policy: String,
    /// Queue discipline name ([`DisciplineKind::name`] for Minos,
    /// [`BUILTIN_DISCIPLINE`] for the baselines).
    pub discipline: String,
    /// Eviction policy name ([`EvictionPolicy::name`]) for churn-sweep
    /// points; [`NO_EVICTION`] for classic rate-sweep points.
    pub eviction: String,
    /// Offered rate, requests/second (aggregate across clients).
    pub offered_rate: f64,
    /// Measured window, seconds.
    pub duration_s: f64,
    /// Client threads.
    pub clients: u64,
    /// Server cores.
    pub cores: u64,
    /// Requests sent in the window.
    pub sent: u64,
    /// Replies received (including drain).
    pub completed: u64,
    /// Requests never answered — packet loss.
    pub outstanding: u64,
    /// Requests abandoned after exhausting their retry budget —
    /// explicit loss under fault injection (0 on clean sweeps).
    pub timed_out: u64,
    /// Error replies (NotFound, OutOfMemory, ...).
    pub errors: u64,
    /// The fault-profile grammar string this point ran under
    /// ([`NO_FAULTS`] for a clean transport).
    pub fault_profile: String,
    /// Whether hedged requests were armed on the measured clients.
    pub hedging: bool,
    /// Hedge copies transmitted.
    pub hedges_sent: u64,
    /// Completions where the hedge copy's reply arrived first.
    pub hedge_wins: u64,
    /// Client accounting-identity violations (schedule count vs client
    /// transmit count, derived outstanding vs pending-table size).
    /// Anything nonzero voids the point.
    pub accounting_warnings: u64,
    /// Completions per second of measured window.
    pub achieved_rate: f64,
    /// `outstanding / sent` (0 when nothing was sent).
    pub loss_rate: f64,
    /// The paper's §5.4 verdict: every request completed.
    pub zero_loss: bool,
    /// Worst scheduling lag any client saw, µs (how far the injector
    /// itself fell behind its open-loop schedule).
    pub behind_max_us: f64,
    /// End-to-end latency from *scheduled arrival* (the
    /// coordinated-omission-safe measurement; None when nothing
    /// completed).
    pub latency_us: Option<Quantiles>,
    /// Schedule-based latency of small requests only — the tail the
    /// paper protects and the discipline shoot-out's verdict metric.
    pub latency_small_us: Option<Quantiles>,
    /// Latency from first transmission — service time without
    /// injection lag, for comparison against `latency_us`.
    pub service_latency_us: Option<Quantiles>,
    /// Schedule-based latency of large requests only.
    pub latency_large_us: Option<Quantiles>,
    /// Value bytes copied on the send path, client + server transports
    /// (0 = scatter-gather end to end, the asserted invariant).
    pub tx_copied_bytes: u64,
    /// Value bytes copied while clients reassembled multi-fragment
    /// replies (exactly once per received large value byte).
    pub reply_copied_bytes: u64,
}

impl SweepPoint {
    /// Serializes the point as one JSON object (one line of a
    /// `BENCH_fig_*.json` sweep).
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .str("policy", &self.policy)
            .str("discipline", &self.discipline)
            .str("eviction", &self.eviction)
            .f64("offered_rate", self.offered_rate, 1)
            .f64("duration_s", self.duration_s, 3)
            .u64("clients", self.clients)
            .u64("cores", self.cores)
            .u64("sent", self.sent)
            .u64("completed", self.completed)
            .u64("outstanding", self.outstanding)
            .u64("timed_out", self.timed_out)
            .u64("errors", self.errors)
            .str("fault_profile", &self.fault_profile)
            .bool("hedging", self.hedging)
            .u64("hedges_sent", self.hedges_sent)
            .u64("hedge_wins", self.hedge_wins)
            .u64("accounting_warnings", self.accounting_warnings)
            .f64("achieved_rate", self.achieved_rate, 1)
            .f64("loss_rate", self.loss_rate, 6)
            .bool("zero_loss", self.zero_loss)
            .f64("behind_max_us", self.behind_max_us, 1)
            .raw("latency_us", &quantiles_json(self.latency_us))
            .raw("latency_small_us", &quantiles_json(self.latency_small_us))
            .raw(
                "service_latency_us",
                &quantiles_json(self.service_latency_us),
            )
            .raw("latency_large_us", &quantiles_json(self.latency_large_us))
            .u64("tx_copied_bytes", self.tx_copied_bytes)
            .u64("reply_copied_bytes", self.reply_copied_bytes)
            .finish()
    }

    /// Parses a point from a [`JsonValue`] object ([`SweepPoint::to_json`]'s
    /// inverse, up to the fixed decimal precision the writer uses).
    pub fn parse(v: &JsonValue) -> Option<SweepPoint> {
        let u64_of = |k: &str| v.get(k)?.as_num()?.as_u64();
        let f64_of = |k: &str| v.get(k).and_then(|x| x.as_num()).map(|n| n.as_f64());
        let bool_of = |k: &str| match v.get(k) {
            Some(JsonValue::Bool(b)) => Some(*b),
            _ => None,
        };
        Some(SweepPoint {
            policy: v.get("policy")?.as_str()?.to_string(),
            // Pre-discipline sweep files (PR 7's rate sweep) have no
            // discipline field; their points read back as builtin.
            discipline: v
                .get("discipline")
                .and_then(|x| x.as_str())
                .unwrap_or(BUILTIN_DISCIPLINE)
                .to_string(),
            // Pre-capacity sweep files (PRs 7–8) have no eviction
            // field; their points read back as eviction-free.
            eviction: v
                .get("eviction")
                .and_then(|x| x.as_str())
                .unwrap_or(NO_EVICTION)
                .to_string(),
            offered_rate: f64_of("offered_rate")?,
            duration_s: f64_of("duration_s")?,
            clients: u64_of("clients")?,
            cores: u64_of("cores")?,
            sent: u64_of("sent")?,
            completed: u64_of("completed")?,
            outstanding: u64_of("outstanding")?,
            // Pre-chaos sweep files (PRs 7–10) have none of the fault /
            // hedging / accounting fields; their points read back as
            // clean, unhedged, warning-free runs.
            timed_out: u64_of("timed_out").unwrap_or(0),
            errors: u64_of("errors")?,
            fault_profile: v
                .get("fault_profile")
                .and_then(|x| x.as_str())
                .unwrap_or(NO_FAULTS)
                .to_string(),
            hedging: bool_of("hedging").unwrap_or(false),
            hedges_sent: u64_of("hedges_sent").unwrap_or(0),
            hedge_wins: u64_of("hedge_wins").unwrap_or(0),
            accounting_warnings: u64_of("accounting_warnings").unwrap_or(0),
            achieved_rate: f64_of("achieved_rate")?,
            loss_rate: f64_of("loss_rate")?,
            zero_loss: bool_of("zero_loss")?,
            behind_max_us: f64_of("behind_max_us")?,
            latency_us: parse_quantiles(v.get("latency_us")),
            latency_small_us: parse_quantiles(v.get("latency_small_us")),
            service_latency_us: parse_quantiles(v.get("service_latency_us")),
            latency_large_us: parse_quantiles(v.get("latency_large_us")),
            tx_copied_bytes: u64_of("tx_copied_bytes")?,
            reply_copied_bytes: u64_of("reply_copied_bytes")?,
        })
    }

    /// This point's [`point_key_chaos`] — its identity under `--resume`.
    pub fn key(&self) -> String {
        point_key_chaos(
            &self.policy,
            &self.discipline,
            &self.eviction,
            &self.fault_profile,
            self.hedging,
            self.offered_rate,
        )
    }
}

/// Parses the [`quantiles_json`] rendering (`null` → `None`).
fn parse_quantiles(v: Option<&JsonValue>) -> Option<Quantiles> {
    let v = v?;
    if matches!(v, JsonValue::Null) {
        return None;
    }
    let f = |k: &str| v.get(k).and_then(|x| x.as_num()).map(|n| n.as_f64());
    Some(Quantiles {
        count: v.get("count")?.as_num()?.as_u64()?,
        mean_us: f("mean_us")?,
        p50_us: f("p50_us")?,
        p90_us: f("p90_us")?,
        p95_us: f("p95_us")?,
        p99_us: f("p99_us")?,
        p999_us: f("p999_us")?,
        p9999_us: f("p9999_us")?,
        max_us: f("max_us")?,
    })
}

/// A started server of any sweepable policy, over real UDP.
enum RunningServer {
    Minos(MinosServer<UdpTransport>),
    Hkh(HkhServer<UdpTransport>),
    Sho(ShoServer<UdpTransport>),
}

impl RunningServer {
    fn start(
        policy: Policy,
        discipline: Option<DisciplineKind>,
        eviction: EvictionPolicy,
        cfg: &SweepConfig,
        transport: Arc<UdpTransport>,
    ) -> RunningServer {
        // Store geometry sized for the dataset with headroom for large
        // values (the mempool default of 1 GiB rides along from the
        // test config constructors). The store's default per-value cap
        // is the paper's 1 MiB largest item; `--s-large` can dial the
        // profile past it, and a preload that silently hit the cap
        // would turn every "large" op into a miss and void the sweep.
        let n_items = (cfg.keys as usize * 2).max(1024);
        let max_value = (cfg.profile.large_max as usize)
            .next_power_of_two()
            .max(1 << 20);
        match policy {
            Policy::Minos => {
                let mut config = ServerConfig::for_test(cfg.cores, n_items);
                // The paper's 1 s epochs: rate points run a few seconds,
                // so the controller gets several adaptation rounds.
                config.minos.epoch_ns = 1_000_000_000;
                config.minos.discipline = discipline.unwrap_or(DisciplineKind::SizeAware);
                config.store.max_value_bytes = config.store.max_value_bytes.max(max_value);
                if let Some(churn) = &cfg.churn {
                    // The churn sweep's whole point: a mempool smaller
                    // than the working set, with eviction to survive it.
                    config.store = crate::kv::StoreConfig::for_items(
                        cfg.cores * 4,
                        n_items,
                        churn.mempool_bytes,
                    );
                    config.store.capacity = CapacityConfig {
                        policy: eviction,
                        ..CapacityConfig::default()
                    };
                }
                RunningServer::Minos(MinosServer::start_with_transport(config, transport))
            }
            Policy::Hkh => {
                let mut config = BaselineConfig::for_test(cfg.cores, n_items);
                config.store.max_value_bytes = config.store.max_value_bytes.max(max_value);
                RunningServer::Hkh(HkhServer::start_with_transport(config, transport))
            }
            Policy::Sho => {
                let mut config = BaselineConfig::for_test(cfg.cores, n_items);
                config.store.max_value_bytes = config.store.max_value_bytes.max(max_value);
                RunningServer::Sho(ShoServer::start_with_transport(
                    config,
                    cfg.sho_handoff,
                    transport,
                ))
            }
        }
    }

    fn stop(&mut self) {
        match self {
            RunningServer::Minos(s) => s.shutdown(),
            RunningServer::Hkh(s) => s.stop(),
            RunningServer::Sho(s) => s.stop(),
        }
    }
}

/// Binds a fresh ephemeral-port UDP client aimed at `server_port`'s
/// queue-0, restricted to the queues `policy` allows clients to target.
/// The transport rides along for statistics (the client owns a clone).
/// `measured` clients get the chaos treatment — the fault wrap, retry
/// policy, and hedging the config asks for; the preload always runs
/// clean.
fn bind_client(
    cfg: &SweepConfig,
    policy: Policy,
    server_port: u16,
    client_id: u16,
    measured: bool,
) -> (Arc<UdpTransport>, Client) {
    let udp = UdpConfig {
        pool_slots: 8192,
        ..UdpConfig::client(Ipv4Addr::UNSPECIFIED)
    };
    let transport = Arc::new(UdpTransport::bind_client_with(udp).expect("bind client socket"));
    let endpoint = transport.local_endpoint(0);
    let server = endpoint_for(Ipv4Addr::LOCALHOST, server_port);
    let dyn_transport: Arc<dyn Transport> = match cfg.fault_profile.as_deref().filter(|_| measured)
    {
        Some(spec) => {
            let profile = FaultProfile::parse(spec).expect("validated at sweep start");
            Arc::new(FaultTransport::new(Arc::clone(&transport), profile))
        }
        None => Arc::clone(&transport) as Arc<dyn Transport>,
    };
    let client = Client::with_transport(
        dyn_transport,
        endpoint,
        server,
        cfg.cores as u16,
        client_id,
        cfg.seed ^ u64::from(client_id),
    );
    let mut client = match policy {
        // SHO's contract: requests enter only through dispatch cores.
        Policy::Sho => client.with_target_queues(0..cfg.sho_handoff as u16),
        Policy::Minos | Policy::Hkh => client,
    };
    if measured {
        if let Some(retry) = cfg.retry {
            client = client.with_retry(retry);
        }
        if cfg.hedge {
            client = client.with_hedging(HedgePolicy::default());
        }
    }
    (transport, client)
}

/// PUTs every dataset key at its profiled size so measured GETs hit.
fn preload(cfg: &SweepConfig, policy: Policy, server_port: u16, dataset: &Dataset) {
    let (_transport, mut client) = bind_client(cfg, policy, server_port, 99, false);
    for key in 0..cfg.keys {
        let size = dataset.size_of(key) as usize;
        let value = vec![(key % 251) as u8; size];
        client.send_put(key, &value, size > crate::wire::MAX_FRAG_CHUNK);
        // Keep the pipe shallow so the preload never overruns sockets.
        if key % 64 == 63 {
            while client.totals().outstanding() > 256 {
                client.poll();
            }
        }
    }
    assert!(
        client.drain(Duration::from_secs(30)),
        "preload lost replies — server not draining?"
    );
    // An error reply still drains, so a preload whose PUTs bounce (e.g.
    // values past the store's per-value cap) would otherwise silently
    // yield a dataset with no large keys — and a meaningless sweep.
    let errors = client.totals().errors;
    assert_eq!(
        errors, 0,
        "preload got {errors} error replies — do the dataset's values fit the store?"
    );
}

/// What one client thread hands back from one rate point.
struct PointReport {
    sent: u64,
    completed: u64,
    outstanding: u64,
    timed_out: u64,
    errors: u64,
    hedges_sent: u64,
    hedge_wins: u64,
    accounting_warnings: u64,
    behind_max_ns: u64,
    latency: LatencyHistogram,
    latency_small: LatencyHistogram,
    latency_large: LatencyHistogram,
    service_latency: LatencyHistogram,
    tx_copied_bytes: u64,
    reply_copied_bytes: u64,
}

/// One client thread's open-loop run at `rate` for `duration`, with
/// schedule-based latency stamping (`send_batch_at` carries each op's
/// scheduled arrival).
fn run_point_client(
    cfg: &SweepConfig,
    policy: Policy,
    server_port: u16,
    client_idx: u16,
    rate: f64,
    barrier: &Barrier,
) -> PointReport {
    let (transport, mut client) = bind_client(cfg, policy, server_port, 1 + client_idx, true);
    enum Generator {
        Access(AccessGenerator),
        Churn(ChurnGenerator),
    }
    let generator = match &cfg.churn {
        Some(churn) => Generator::Churn(ChurnGenerator::new(churn.generator_config(cfg))),
        None => {
            let dataset = Dataset::new(
                cfg.keys,
                cfg.large_keys,
                0.4,
                cfg.profile.large_max,
                cfg.seed,
            );
            Generator::Access(AccessGenerator::new(
                dataset,
                cfg.profile.p_large,
                cfg.profile.get_ratio,
                cfg.profile.zipf_s,
            ))
        }
    };
    let next_op = |rng: &mut Rng| match &generator {
        Generator::Access(g) => g.next_op(rng),
        Generator::Churn(g) => g.next_op(rng),
    };
    let mut arrival_rng = Rng::new(cfg.seed ^ 0x9e37_79b9 ^ (u64::from(client_idx) << 17));
    let mut op_rng = Rng::new(
        (cfg.seed ^ (u64::from(client_idx) + 1).wrapping_mul(0x5851_f42d_4c95_7f2d))
            .wrapping_mul(0x2545_f491_4f6c_dd1d),
    );

    // All clients release their schedules together.
    barrier.wait();
    let run_start_ns = client.now_ns();
    let mut arrivals = OpenLoop::new(rate, run_start_ns);
    let start = Instant::now();
    let mut next_at = arrivals.next_arrival(&mut arrival_rng);
    let mut sent = 0u64;
    let mut behind_max_ns = 0u64;
    const COALESCE_CAP: usize = 32;
    let mut due: Vec<(OpSpec, u64)> = Vec::with_capacity(COALESCE_CAP);
    while start.elapsed() < cfg.duration {
        let now = client.now_ns();
        due.clear();
        while now >= next_at && due.len() < COALESCE_CAP {
            behind_max_ns = behind_max_ns.max(now - next_at);
            due.push((next_op(&mut op_rng), next_at));
            next_at = arrivals.next_arrival(&mut arrival_rng);
        }
        if !due.is_empty() {
            client.send_batch_at(&due);
            sent += due.len() as u64;
        }
        client.poll();
    }
    client.drain(cfg.drain_timeout);
    let totals = client.totals();
    // The accounting identity, cross-checked with independent counters:
    // what this loop scheduled vs what the client transmitted, and the
    // derived outstanding() vs the actual pending-table size.
    let mut accounting_warnings = 0u64;
    if sent != totals.sent {
        accounting_warnings += 1;
    }
    if totals.outstanding() != client.pending_len() {
        accounting_warnings += 1;
    }
    PointReport {
        sent,
        completed: totals.completed,
        outstanding: totals.outstanding(),
        timed_out: totals.timed_out,
        errors: totals.errors,
        hedges_sent: totals.hedges_sent,
        hedge_wins: totals.hedge_wins,
        accounting_warnings,
        behind_max_ns,
        latency: client.latency().clone(),
        latency_small: client.latency_small().clone(),
        latency_large: client.latency_large().clone(),
        service_latency: client.service_latency().clone(),
        tx_copied_bytes: transport.stats().tx_copied_bytes,
        reply_copied_bytes: client.reply_copied_bytes(),
    }
}

/// Runs the full sweep: for each `(policy, discipline)` instance, bind
/// a UDP server, preload the dataset once, then measure every rate in
/// `cfg.rates` in order. `progress` sees each completed point as it
/// lands (the CLI streams them as JSON lines).
pub fn run_sweep(cfg: &SweepConfig, progress: impl FnMut(&SweepPoint)) -> Vec<SweepPoint> {
    run_sweep_resuming(cfg, &[], progress)
}

/// [`run_sweep`], resuming an interrupted sweep: any `(policy,
/// discipline, rate)` point whose [`point_key`] already appears in
/// `existing` is carried over verbatim instead of re-measured — an
/// instance none of whose rates are missing is never even bound. The
/// returned vector holds carried and fresh points in sweep order;
/// `progress` sees only the freshly measured ones.
pub fn run_sweep_resuming(
    cfg: &SweepConfig,
    existing: &[SweepPoint],
    mut progress: impl FnMut(&SweepPoint),
) -> Vec<SweepPoint> {
    cfg.validate();
    let instances = cfg.instances();
    let mut points = Vec::with_capacity(instances.len() * cfg.rates.len());
    for (ii, &(policy, discipline, eviction)) in instances.iter().enumerate() {
        let label = discipline_label(discipline);
        let ev_label = eviction.name();
        let fault_label = cfg.fault_profile.as_deref().unwrap_or(NO_FAULTS);
        let carried = |rate: f64| {
            let key = point_key_chaos(policy.name(), label, ev_label, fault_label, cfg.hedge, rate);
            existing.iter().find(|p| p.key() == key).cloned()
        };
        if cfg.rates.iter().all(|&r| carried(r).is_some()) {
            points.extend(cfg.rates.iter().map(|&r| carried(r).expect("checked")));
            continue;
        }
        let server_port = cfg.base_port + (ii * cfg.cores) as u16;
        let transport = Arc::new(
            UdpTransport::bind(UdpConfig::loopback(server_port, cfg.cores as u16))
                .expect("bind server sockets"),
        );
        let mut server =
            RunningServer::start(policy, discipline, eviction, cfg, Arc::clone(&transport));
        if cfg.churn.is_none() {
            // Churn mode skips the preload: the working set would not
            // fit anyway, and the churn PUTs build it live.
            let dataset = Dataset::new(
                cfg.keys,
                cfg.large_keys,
                0.4,
                cfg.profile.large_max,
                cfg.seed,
            );
            preload(cfg, policy, server_port, &dataset);
        }

        for &rate in &cfg.rates {
            if let Some(done) = carried(rate) {
                points.push(done);
                continue;
            }
            let server_tx_copied_before = transport.stats().tx_copied_bytes;
            let per_client_rate = rate / f64::from(cfg.clients);
            let barrier = Barrier::new(cfg.clients as usize);
            let reports: Vec<PointReport> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..cfg.clients)
                    .map(|c| {
                        let barrier = &barrier;
                        scope.spawn(move || {
                            run_point_client(cfg, policy, server_port, c, per_client_rate, barrier)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            let mut latency = LatencyHistogram::new();
            let mut latency_small = LatencyHistogram::new();
            let mut latency_large = LatencyHistogram::new();
            let mut service_latency = LatencyHistogram::new();
            let (mut sent, mut completed, mut outstanding, mut errors) = (0u64, 0u64, 0u64, 0u64);
            let (mut timed_out, mut hedges_sent, mut hedge_wins) = (0u64, 0u64, 0u64);
            let mut accounting_warnings = 0u64;
            let mut behind_max_ns = 0u64;
            let mut tx_copied = 0u64;
            let mut reply_copied = 0u64;
            for r in &reports {
                latency.merge(&r.latency);
                latency_small.merge(&r.latency_small);
                latency_large.merge(&r.latency_large);
                service_latency.merge(&r.service_latency);
                sent += r.sent;
                completed += r.completed;
                outstanding += r.outstanding;
                timed_out += r.timed_out;
                errors += r.errors;
                hedges_sent += r.hedges_sent;
                hedge_wins += r.hedge_wins;
                accounting_warnings += r.accounting_warnings;
                behind_max_ns = behind_max_ns.max(r.behind_max_ns);
                tx_copied += r.tx_copied_bytes;
                reply_copied += r.reply_copied_bytes;
            }
            tx_copied += transport.stats().tx_copied_bytes - server_tx_copied_before;

            let point = SweepPoint {
                policy: policy.name().to_string(),
                discipline: label.to_string(),
                eviction: ev_label.to_string(),
                offered_rate: rate,
                duration_s: cfg.duration.as_secs_f64(),
                clients: u64::from(cfg.clients),
                cores: cfg.cores as u64,
                sent,
                completed,
                outstanding,
                timed_out,
                errors,
                fault_profile: fault_label.to_string(),
                hedging: cfg.hedge,
                hedges_sent,
                hedge_wins,
                accounting_warnings,
                achieved_rate: completed as f64 / cfg.duration.as_secs_f64().max(f64::MIN_POSITIVE),
                // A timed-out request is explicit loss: it was
                // abandoned after its retry budget, so it counts
                // against the §5.4 verdict exactly like a never-
                // answered one.
                loss_rate: if sent > 0 {
                    (outstanding + timed_out) as f64 / sent as f64
                } else {
                    0.0
                },
                zero_loss: outstanding == 0 && timed_out == 0,
                behind_max_us: behind_max_ns as f64 / 1e3,
                latency_us: latency.quantiles(),
                latency_small_us: latency_small.quantiles(),
                service_latency_us: service_latency.quantiles(),
                latency_large_us: latency_large.quantiles(),
                tx_copied_bytes: tx_copied,
                reply_copied_bytes: reply_copied,
            };
            progress(&point);
            points.push(point);
        }
        server.stop();
        // Sockets close with the transport; the next policy binds its
        // own port range regardless, so no reuse race.
        drop(server);
        drop(transport);
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_point() -> SweepPoint {
        SweepPoint {
            policy: "minos".into(),
            discipline: "size-aware".into(),
            eviction: NO_EVICTION.into(),
            offered_rate: 20_000.0,
            duration_s: 5.0,
            clients: 2,
            cores: 2,
            sent: 100_000,
            completed: 99_990,
            outstanding: 10,
            timed_out: 0,
            errors: 3,
            fault_profile: NO_FAULTS.into(),
            hedging: false,
            hedges_sent: 0,
            hedge_wins: 0,
            accounting_warnings: 0,
            achieved_rate: 19_998.0,
            loss_rate: 0.0001,
            zero_loss: false,
            behind_max_us: 1_234.5,
            latency_us: Some(Quantiles {
                count: 99_990,
                mean_us: 42.0,
                p50_us: 30.0,
                p90_us: 80.0,
                p95_us: 95.0,
                p99_us: 140.0,
                p999_us: 410.0,
                p9999_us: 900.0,
                max_us: 1_500.0,
            }),
            latency_small_us: None,
            service_latency_us: None,
            latency_large_us: None,
            tx_copied_bytes: 0,
            reply_copied_bytes: 123_456,
        }
    }

    #[test]
    fn sweep_point_json_round_trips() {
        let p = sample_point();
        let json = p.to_json();
        let parsed = SweepPoint::parse(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed, p);
        // And the rendering is a fixpoint.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn policy_names_round_trip() {
        for p in Policy::ALL {
            assert_eq!(Policy::from_name(p.name()), Some(p));
        }
        assert_eq!(Policy::from_name("zygos"), None);
    }

    #[test]
    fn pre_discipline_points_parse_as_builtin() {
        // PR 7's committed rate sweep predates the discipline field;
        // its points must still read back (as the builtin dispatch).
        let mut p = sample_point();
        p.discipline = BUILTIN_DISCIPLINE.into();
        let json = p.to_json().replace("\"discipline\":\"builtin\",", "");
        assert!(!json.contains("discipline"));
        let parsed = SweepPoint::parse(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn point_keys_compare_at_writer_precision() {
        let p = sample_point();
        assert_eq!(p.key(), "minos/size-aware@20000.0");
        assert_eq!(p.key(), point_key("minos", "size-aware", 20_000.04));
        assert_ne!(p.key(), point_key("minos", "cfcfs", 20_000.0));
    }

    #[test]
    fn eviction_points_get_distinct_keys_and_parse_tolerantly() {
        // Classic points keep their historical key; churn points of the
        // same (policy, discipline, rate) differ per eviction policy.
        let mut p = sample_point();
        p.eviction = "clock".into();
        assert_eq!(p.key(), "minos/size-aware+clock@20000.0");
        assert_ne!(p.key(), sample_point().key());
        let round = SweepPoint::parse(&JsonValue::parse(&p.to_json()).unwrap()).unwrap();
        assert_eq!(round, p);
        // Pre-capacity sweep files have no eviction field: they read
        // back as eviction-free with an unchanged key.
        let legacy = sample_point();
        let json = legacy.to_json().replace("\"eviction\":\"none\",", "");
        assert!(!json.contains("eviction"));
        let parsed = SweepPoint::parse(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed, legacy);
    }

    #[test]
    fn chaos_points_get_distinct_keys_and_parse_tolerantly() {
        // A fault-injected, hedged point must not collide with the
        // clean run of the same (policy, discipline, rate) under
        // --resume, and must round-trip through JSON.
        let mut p = sample_point();
        p.fault_profile = "drop=0.01,reorder=8,seed=42".into();
        p.hedging = true;
        p.timed_out = 2;
        p.hedges_sent = 150;
        p.hedge_wins = 40;
        assert_eq!(
            p.key(),
            "minos/size-aware+fault:drop=0.01,reorder=8,seed=42+hedge@20000.0"
        );
        assert_ne!(p.key(), sample_point().key());
        let round = SweepPoint::parse(&JsonValue::parse(&p.to_json()).unwrap()).unwrap();
        assert_eq!(round, p);
        // Pre-chaos sweep files have none of the fields: they read back
        // as clean, unhedged runs with an unchanged key.
        let legacy = sample_point();
        let json = legacy
            .to_json()
            .replace("\"timed_out\":0,", "")
            .replace("\"fault_profile\":\"none\",", "")
            .replace("\"hedging\":false,", "")
            .replace("\"hedges_sent\":0,", "")
            .replace("\"hedge_wins\":0,", "")
            .replace("\"accounting_warnings\":0,", "");
        assert!(!json.contains("fault_profile") && !json.contains("hedg"));
        let parsed = SweepPoint::parse(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed, legacy);
        assert_eq!(parsed.key(), legacy.key());
    }

    #[test]
    fn fully_resumed_sweep_reruns_nothing() {
        // Every (instance × rate) point is already present: the sweep
        // must return the carried points in order without binding a
        // single socket (progress never fires).
        let mut cfg = SweepConfig::loopback(1, vec![1_000.0, 2_000.0]);
        cfg.disciplines = vec![DisciplineKind::SizeAware, DisciplineKind::Cfcfs];
        // If any instance were started anyway, its fresh points would
        // stream through `progress` and trip the assertion below.
        let existing: Vec<SweepPoint> = cfg
            .instances()
            .iter()
            .flat_map(|&(policy, discipline, eviction)| {
                cfg.rates.iter().map(move |&rate| SweepPoint {
                    policy: policy.name().into(),
                    discipline: discipline_label(discipline).into(),
                    eviction: eviction.name().into(),
                    offered_rate: rate,
                    ..sample_point()
                })
            })
            .collect();
        let mut streamed = 0;
        let points = run_sweep_resuming(&cfg, &existing, |_| streamed += 1);
        assert_eq!(streamed, 0);
        assert_eq!(points, existing);
    }
}
