//! `minos-server`: the Minos store serving real UDP traffic.
//!
//! One `SO_REUSEPORT` UDP socket per core: core `q` listens on
//! `base_port + q`, so clients address a specific RX queue by
//! destination port (the paper's §3 hardware-dispatch model with the
//! kernel's port demux standing in for the NIC).
//!
//! ```text
//! minos-server [--cores N] [--bind IP] [--port BASE] [--items N]
//!              [--mem BYTES] [--threshold dynamic|BYTES]
//!              [--duration SECS] [--batch N] [--sockbuf BYTES]
//!              [--pin BASECPU] [--json]
//! ```
//!
//! Runs until Ctrl-C (or `--duration`), then shuts down gracefully:
//! stops accepting nothing new is needed — UDP has no connections — and
//! drains in-flight handoffs before joining the core threads.
//!
//! `--json` prints a machine-readable exit report to stdout (all human
//! chatter moves to stderr) with the server-side gauges the CI perf
//! gate asserts: `put_copied_bytes` (the one-copy ingest invariant),
//! `reassembly_evictions`, RX buffer-pool hit/miss/outstanding and
//! `tx_copied_bytes`.

use minos::core::config::ThresholdMode;
use minos::core::server::{MinosServer, ServerConfig};
use minos::net::{Transport, UdpConfig, UdpTransport};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    cores: usize,
    bind: Ipv4Addr,
    base_port: u16,
    items: usize,
    mempool_bytes: usize,
    threshold: ThresholdMode,
    duration: Option<Duration>,
    batch: usize,
    sockbuf: usize,
    pin_base: Option<usize>,
    json: bool,
}

use minos::human;

const USAGE: &str = "minos-server: size-aware sharded KV store over real UDP

USAGE:
    minos-server [OPTIONS]

OPTIONS:
    --cores N          server cores / RX queues (default 4)
    --bind IP          IPv4 address to bind (default 127.0.0.1)
    --port BASE        base UDP port; core q listens on BASE+q (default 9000)
    --items N          store capacity in items (default 1000000)
    --mem BYTES        value-memory budget (default 2147483648 = 2 GiB)
    --threshold MODE   'dynamic' (paper control loop, default) or a fixed
                       byte threshold, e.g. '--threshold 1456'
    --duration SECS    exit after SECS instead of waiting for Ctrl-C
    --batch N          max datagrams per recvmmsg/sendmmsg syscall
                       (default 32; 1 = one syscall per datagram)
    --sockbuf BYTES    socket send/receive buffer per queue (default 4 MiB)
    --pin BASECPU      pin core q's polling thread to cpu BASECPU+q
                       (sched_setaffinity; best-effort)
    --json             print a machine-readable JSON exit report to
                       stdout (human output moves to stderr)
    -h, --help         this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cores: 4,
        bind: Ipv4Addr::LOCALHOST,
        base_port: 9000,
        items: 1_000_000,
        mempool_bytes: 2 << 30,
        threshold: ThresholdMode::Dynamic,
        duration: None,
        batch: minos::net::DEFAULT_SYSCALL_BATCH,
        sockbuf: 4 << 20,
        pin_base: None,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--cores" => {
                args.cores = value("--cores")?
                    .parse()
                    .map_err(|e| format!("--cores: {e}"))?
            }
            "--bind" => {
                args.bind = value("--bind")?
                    .parse()
                    .map_err(|e| format!("--bind: {e}"))?
            }
            "--port" => {
                args.base_port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?
            }
            "--items" => {
                args.items = value("--items")?
                    .parse()
                    .map_err(|e| format!("--items: {e}"))?
            }
            "--mem" => {
                args.mempool_bytes = value("--mem")?.parse().map_err(|e| format!("--mem: {e}"))?
            }
            "--threshold" => {
                let v = value("--threshold")?;
                args.threshold = if v == "dynamic" {
                    ThresholdMode::Dynamic
                } else {
                    ThresholdMode::Static(v.parse().map_err(|e| format!("--threshold: {e}"))?)
                };
            }
            "--duration" => {
                args.duration = Some(Duration::from_secs_f64(
                    value("--duration")?
                        .parse()
                        .map_err(|e| format!("--duration: {e}"))?,
                ))
            }
            "--batch" => {
                args.batch = value("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?
            }
            "--sockbuf" => {
                args.sockbuf = value("--sockbuf")?
                    .parse()
                    .map_err(|e| format!("--sockbuf: {e}"))?
            }
            "--pin" => {
                args.pin_base = Some(value("--pin")?.parse().map_err(|e| format!("--pin: {e}"))?)
            }
            "--json" => args.json = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.cores == 0 || args.cores > u16::MAX as usize {
        return Err("--cores must be in 1..65536".into());
    }
    if args.base_port.checked_add(args.cores as u16 - 1).is_none() {
        return Err(format!(
            "--port {} + {} cores exceeds 65535",
            args.base_port, args.cores
        ));
    }
    Ok(args)
}

/// Ctrl-C handling without external crates: a SIGINT handler flips one
/// atomic the main loop polls.
mod signal {
    use super::{AtomicBool, Ordering};

    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    pub fn install() {
        extern "C" fn on_sigint(_sig: i32) {
            INTERRUPTED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_sigint);
            signal(SIGTERM, on_sigint);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    let transport = match UdpTransport::bind(UdpConfig {
        ip: args.bind,
        batch: args.batch,
        socket_buffer_bytes: args.sockbuf,
        ..UdpConfig::loopback(args.base_port, args.cores as u16)
    }) {
        Ok(t) => Arc::new(t),
        Err(e) => {
            eprintln!(
                "error: cannot bind {}:{}..{}: {e}",
                args.bind,
                args.base_port,
                args.base_port + args.cores as u16 - 1
            );
            std::process::exit(1);
        }
    };

    let mut config = ServerConfig::for_test(args.cores, args.items);
    config.minos.threshold_mode = args.threshold;
    config.minos.epoch_ns = 1_000_000_000; // the paper's 1 s epochs
    config.store =
        minos::kv::StoreConfig::for_items(args.cores * 4, args.items, args.mempool_bytes);
    config.pin_cpus = args
        .pin_base
        .map(|base| (base..base + args.cores).collect());

    human!(
        args,
        "minos-server: {} cores on {}:{}..{} (threshold {:?}, {} item slots, syscall batch {}{})",
        args.cores,
        args.bind,
        args.base_port,
        args.base_port + args.cores as u16 - 1,
        args.threshold,
        args.items,
        args.batch,
        match args.pin_base {
            Some(base) => format!(", pinned to cpus {}..{}", base, base + args.cores),
            None => String::new(),
        },
    );
    human!(args, "press Ctrl-C to drain and exit");

    signal::install();
    let mut server = MinosServer::start_with_transport(config, Arc::clone(&transport));

    let started = Instant::now();
    let mut last_report = Instant::now();
    let mut last_stats = transport.stats();
    loop {
        if signal::INTERRUPTED.load(Ordering::SeqCst) {
            human!(
                args,
                "\nminos-server: interrupt — draining in-flight requests"
            );
            break;
        }
        if let Some(d) = args.duration {
            if started.elapsed() >= d {
                human!(args, "minos-server: duration elapsed — draining");
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
        if last_report.elapsed() >= Duration::from_secs(5) {
            let s = transport.stats();
            let secs = last_report.elapsed().as_secs_f64();
            human!(
                args,
                "rx {:.0}/s tx {:.0}/s (totals: rx {} tx {} dropped {}; epochs {})",
                (s.rx_packets - last_stats.rx_packets) as f64 / secs,
                (s.tx_packets - last_stats.tx_packets) as f64 / secs,
                s.rx_packets,
                s.tx_packets,
                s.tx_dropped,
                server.counters().epochs,
            );
            last_stats = s;
            last_report = Instant::now();
        }
    }

    // Graceful shutdown: in-flight handoffs finish (their replies go
    // out) before the polling threads stop.
    let drained = server.drain(Duration::from_secs(5));
    server.shutdown();
    let s = transport.stats();
    let io = transport.io_stats();
    let counters = server.counters();
    let store_stats = server.store().stats();
    human!(
        args,
        "minos-server: {} — rx {} packets, tx {} packets, {} tx drops, {} epochs",
        if drained { "drained" } else { "drain timeout" },
        s.rx_packets,
        s.tx_packets,
        s.tx_dropped,
        counters.epochs,
    );
    human!(
        args,
        "syscall batching: {} — {} rx syscalls for {} packets, {} tx syscalls for {} packets",
        if io.batched {
            "recvmmsg/sendmmsg"
        } else {
            "recv_from/send_to"
        },
        io.rx_syscalls,
        io.rx_packets,
        io.tx_syscalls,
        io.tx_packets,
    );
    human!(
        args,
        "rx buffer pool: {} hits / {} misses ({:.2}% hit rate), {} outstanding",
        io.pool_hits,
        io.pool_misses,
        io.pool_hit_rate() * 100.0,
        io.pool_outstanding,
    );
    human!(
        args,
        "zero-copy tx: {} value bytes copied on the reply path{}",
        io.tx_copied_bytes,
        if io.tx_copied_bytes == 0 {
            " (scatter-gather end to end)"
        } else {
            " — gather fallback engaged"
        },
    );
    human!(
        args,
        "one-copy ingest: {} value bytes copied wire -> mempool over {} puts; {} stale partial reassemblies evicted",
        counters.put_copied_bytes,
        store_stats.puts,
        counters.reassembly_evictions,
    );

    if args.json {
        // Hand-rolled like minos-loadgen's report: the offline build
        // vendors no serde, and every field is a number or bool.
        println!(
            concat!(
                "{{",
                "\"drained\":{drained},",
                "\"epochs\":{epochs},",
                "\"soft_queue_drops\":{soft_drops},",
                "\"malformed\":{malformed},",
                "\"transport\":{{",
                "\"batched\":{batched},",
                "\"rx_packets\":{rx_packets},",
                "\"tx_packets\":{tx_packets},",
                "\"tx_dropped\":{tx_dropped},",
                "\"rx_syscalls\":{rx_syscalls},",
                "\"tx_syscalls\":{tx_syscalls},",
                "\"tx_copied_bytes\":{tx_copied_bytes}",
                "}},",
                "\"pool\":{{",
                "\"hits\":{pool_hits},",
                "\"misses\":{pool_misses},",
                "\"outstanding\":{pool_outstanding},",
                "\"hit_rate\":{pool_hit_rate:.6}",
                "}},",
                "\"ingest\":{{",
                "\"puts\":{puts},",
                "\"put_failures\":{put_failures},",
                "\"put_copied_bytes\":{put_copied_bytes},",
                "\"reassembly_evictions\":{reassembly_evictions}",
                "}}",
                "}}"
            ),
            drained = drained,
            epochs = counters.epochs,
            soft_drops = counters.soft_queue_drops,
            malformed = counters.malformed,
            batched = io.batched,
            rx_packets = s.rx_packets,
            tx_packets = s.tx_packets,
            tx_dropped = s.tx_dropped,
            rx_syscalls = io.rx_syscalls,
            tx_syscalls = io.tx_syscalls,
            tx_copied_bytes = io.tx_copied_bytes,
            pool_hits = io.pool_hits,
            pool_misses = io.pool_misses,
            pool_outstanding = io.pool_outstanding,
            pool_hit_rate = io.pool_hit_rate(),
            puts = store_stats.puts,
            put_failures = store_stats.put_failures,
            put_copied_bytes = counters.put_copied_bytes,
            reassembly_evictions = counters.reassembly_evictions,
        );
    }
}
