//! `minos-server`: the Minos store serving real UDP traffic.
//!
//! One `SO_REUSEPORT` UDP socket per core: core `q` listens on
//! `base_port + q`, so clients address a specific RX queue by
//! destination port (the paper's §3 hardware-dispatch model with the
//! kernel's port demux standing in for the NIC).
//!
//! ```text
//! minos-server [--cores N] [--bind IP] [--port BASE] [--items N]
//!              [--mem BYTES] [--threshold dynamic|BYTES]
//!              [--discipline NAME] [--steal]
//!              [--shed-watermark N] [--fault-profile SPEC]
//!              [--duration SECS] [--batch N] [--sockbuf BYTES]
//!              [--pin BASECPU] [--json]
//! ```
//!
//! Runs until Ctrl-C (or `--duration`), then shuts down gracefully:
//! stops accepting nothing new is needed — UDP has no connections — and
//! drains in-flight handoffs before joining the core threads.
//!
//! `--json` prints a machine-readable exit report to stdout (all human
//! chatter moves to stderr) with the server-side gauges the CI perf
//! gate asserts: `put_copied_bytes` (the one-copy ingest invariant),
//! `reassembly_evictions`, RX buffer-pool hit/miss/outstanding and
//! `tx_copied_bytes`.
//!
//! `--stats-interval-ms N` additionally emits a live telemetry timeline:
//! one JSON line per interval with every registered metric — including
//! the per-core per-class queue-wait and service-time histograms — to
//! stderr, or to `--stats-file PATH`. `SIGUSR1` forces an out-of-band
//! snapshot line at any time.

use minos::core::config::ThresholdMode;
use minos::core::dispatch::DisciplineKind;
use minos::core::server::{MinosServer, ServerConfig};
use minos::kv::{CapacityConfig, EvictionPolicy};
use minos::net::{FaultProfile, FaultTransport, Transport, UdpConfig, UdpTransport};
use minos::report;
use std::io::Write;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    cores: usize,
    bind: Ipv4Addr,
    base_port: u16,
    items: usize,
    mempool_bytes: usize,
    eviction: EvictionPolicy,
    evict_high: f64,
    evict_low: f64,
    evict_headroom: usize,
    threshold: ThresholdMode,
    discipline: DisciplineKind,
    steal: bool,
    shed_watermark: usize,
    fault: FaultProfile,
    duration: Option<Duration>,
    batch: usize,
    sockbuf: usize,
    pin_base: Option<usize>,
    stats_interval: Option<Duration>,
    stats_file: Option<String>,
    json: bool,
}

/// Where `--stats-interval-ms` snapshot lines go: a file when
/// `--stats-file` is given, stderr otherwise (stdout is reserved for the
/// `--json` exit report).
enum StatsSink {
    Stderr,
    File(std::fs::File),
}

impl StatsSink {
    fn open(args: &Args) -> Result<StatsSink, String> {
        match &args.stats_file {
            None => Ok(StatsSink::Stderr),
            Some(path) => std::fs::File::create(path)
                .map(StatsSink::File)
                .map_err(|e| format!("--stats-file {path}: {e}")),
        }
    }

    fn emit(&mut self, line: &str) {
        let res = match self {
            StatsSink::Stderr => writeln!(std::io::stderr().lock(), "{line}"),
            StatsSink::File(f) => writeln!(f, "{line}").and_then(|()| f.flush()),
        };
        if let Err(e) = res {
            eprintln!("minos-server: stats write failed: {e}");
        }
    }
}

use minos::human;

const USAGE: &str = "minos-server: size-aware sharded KV store over real UDP

USAGE:
    minos-server [OPTIONS]

OPTIONS:
    --cores N          server cores / RX queues (default 4)
    --bind IP          IPv4 address to bind (default 127.0.0.1)
    --port BASE        base UDP port; core q listens on BASE+q (default 9000)
    --items N          store capacity in items (default 1000000)
    --mem BYTES        value-memory budget (default 2147483648 = 2 GiB)
    --eviction-policy P
                       capacity tiering when the dataset outgrows --mem:
                       'none' (default: over-capacity PUTs get
                       OutOfMemory), 'clock' (second-chance eviction to
                       the low watermark), or 'size-aware-clock' (clock,
                       preferring the largest unreferenced victim)
    --evict-high F     high watermark as a fraction of --mem; eviction
                       starts above it (default 0.90)
    --evict-low F      low watermark: eviction passes drain occupancy
                       down to this fraction (default 0.80)
    --evict-headroom BYTES
                       absolute floor: the high watermark never sits
                       closer than BYTES below --mem (default 0)
    --threshold MODE   'dynamic' (paper control loop, default) or a fixed
                       byte threshold, e.g. '--threshold 1456'
    --discipline NAME  queue discipline placing decoded requests on
                       cores: size-aware (default, the paper), cfcfs,
                       dfcfs, jsq, round-robin, random
    --steal            ZygOS-style work stealing: an idle core pops one
                       request from the longest peer software queue
    --shed-watermark N overload valve: when a placement targets a
                       software queue already holding >= N requests,
                       *large* requests are answered Overloaded instead
                       of enqueued (small-class tail protection under
                       overload; counted in dispatch.sheds). 0 = off
                       (default)
    --fault-profile SPEC
                       wrap the transport in a deterministic fault
                       injector, e.g. 'drop=0.01,dup=0.001,reorder=8,
                       delay_us=200,seed=42'; prefix keys with rx. or
                       tx. to scope a direction, add blackhole=Q to
                       swallow one RX queue. Injected faults are
                       counted under fault.*
    --duration SECS    exit after SECS instead of waiting for Ctrl-C
    --batch N          max datagrams per recvmmsg/sendmmsg syscall
                       (default 32; 1 = one syscall per datagram)
    --sockbuf BYTES    socket send/receive buffer per queue (default 4 MiB)
    --pin BASECPU      pin core q's polling thread to cpu BASECPU+q
                       (sched_setaffinity; best-effort)
    --stats-interval-ms N
                       emit a JSON snapshot line of every metric
                       (counters, gauges, per-core per-class queue-wait /
                       service-time histograms) every N ms; 0 disables
                       (default 0). SIGUSR1 forces a snapshot any time.
    --stats-file PATH  write snapshot lines to PATH instead of stderr
    --json             print a machine-readable JSON exit report to
                       stdout (human output moves to stderr)
    -h, --help         this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cores: 4,
        bind: Ipv4Addr::LOCALHOST,
        base_port: 9000,
        items: 1_000_000,
        mempool_bytes: 2 << 30,
        eviction: EvictionPolicy::None,
        evict_high: CapacityConfig::default().high_fraction,
        evict_low: CapacityConfig::default().low_fraction,
        evict_headroom: CapacityConfig::default().min_headroom_bytes,
        threshold: ThresholdMode::Dynamic,
        discipline: DisciplineKind::SizeAware,
        steal: false,
        shed_watermark: 0,
        fault: FaultProfile::default(),
        duration: None,
        batch: minos::net::DEFAULT_SYSCALL_BATCH,
        sockbuf: 4 << 20,
        pin_base: None,
        stats_interval: None,
        stats_file: None,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--cores" => {
                args.cores = value("--cores")?
                    .parse()
                    .map_err(|e| format!("--cores: {e}"))?
            }
            "--bind" => {
                args.bind = value("--bind")?
                    .parse()
                    .map_err(|e| format!("--bind: {e}"))?
            }
            "--port" => {
                args.base_port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?
            }
            "--items" => {
                args.items = value("--items")?
                    .parse()
                    .map_err(|e| format!("--items: {e}"))?
            }
            "--mem" => {
                args.mempool_bytes = value("--mem")?.parse().map_err(|e| format!("--mem: {e}"))?
            }
            "--eviction-policy" => {
                let v = value("--eviction-policy")?;
                args.eviction = EvictionPolicy::from_name(&v).ok_or_else(|| {
                    format!("unknown eviction policy: {v} (none|clock|size-aware-clock)")
                })?;
            }
            "--evict-high" => {
                args.evict_high = value("--evict-high")?
                    .parse()
                    .map_err(|e| format!("--evict-high: {e}"))?
            }
            "--evict-low" => {
                args.evict_low = value("--evict-low")?
                    .parse()
                    .map_err(|e| format!("--evict-low: {e}"))?
            }
            "--evict-headroom" => {
                args.evict_headroom = value("--evict-headroom")?
                    .parse()
                    .map_err(|e| format!("--evict-headroom: {e}"))?
            }
            "--threshold" => {
                let v = value("--threshold")?;
                args.threshold = if v == "dynamic" {
                    ThresholdMode::Dynamic
                } else {
                    ThresholdMode::Static(v.parse().map_err(|e| format!("--threshold: {e}"))?)
                };
            }
            "--discipline" => {
                let v = value("--discipline")?;
                args.discipline = DisciplineKind::from_name(&v).ok_or_else(|| {
                    format!(
                        "unknown discipline: {v} (size-aware|cfcfs|dfcfs|jsq|round-robin|random)"
                    )
                })?;
            }
            "--steal" => args.steal = true,
            "--shed-watermark" => {
                args.shed_watermark = value("--shed-watermark")?
                    .parse()
                    .map_err(|e| format!("--shed-watermark: {e}"))?
            }
            "--fault-profile" => {
                args.fault = FaultProfile::parse(&value("--fault-profile")?)
                    .map_err(|e| format!("--fault-profile: {e}"))?
            }
            "--duration" => {
                args.duration = Some(Duration::from_secs_f64(
                    value("--duration")?
                        .parse()
                        .map_err(|e| format!("--duration: {e}"))?,
                ))
            }
            "--batch" => {
                args.batch = value("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?
            }
            "--sockbuf" => {
                args.sockbuf = value("--sockbuf")?
                    .parse()
                    .map_err(|e| format!("--sockbuf: {e}"))?
            }
            "--pin" => {
                args.pin_base = Some(value("--pin")?.parse().map_err(|e| format!("--pin: {e}"))?)
            }
            "--stats-interval-ms" => {
                let ms: u64 = value("--stats-interval-ms")?
                    .parse()
                    .map_err(|e| format!("--stats-interval-ms: {e}"))?;
                args.stats_interval = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--stats-file" => args.stats_file = Some(value("--stats-file")?),
            "--json" => args.json = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.cores == 0 || args.cores > u16::MAX as usize {
        return Err("--cores must be in 1..65536".into());
    }
    if args.base_port.checked_add(args.cores as u16 - 1).is_none() {
        return Err(format!(
            "--port {} + {} cores exceeds 65535",
            args.base_port, args.cores
        ));
    }
    if !(0.0 < args.evict_low && args.evict_low <= args.evict_high && args.evict_high <= 1.0) {
        return Err(format!(
            "watermarks need 0 < --evict-low ({}) <= --evict-high ({}) <= 1",
            args.evict_low, args.evict_high
        ));
    }
    Ok(args)
}

/// Signal handling without external crates: handlers flip atomics the
/// main loop polls. SIGINT/SIGTERM request shutdown; SIGUSR1 requests an
/// out-of-band telemetry snapshot.
mod signal {
    use super::{AtomicBool, Ordering};

    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);
    pub static DUMP_REQUESTED: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    pub fn install() {
        extern "C" fn on_sigint(_sig: i32) {
            INTERRUPTED.store(true, Ordering::SeqCst);
        }
        extern "C" fn on_sigusr1(_sig: i32) {
            DUMP_REQUESTED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        const SIGUSR1: i32 = 10;
        unsafe {
            signal(SIGINT, on_sigint);
            signal(SIGTERM, on_sigint);
            signal(SIGUSR1, on_sigusr1);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}

    /// Consumes a pending SIGUSR1 dump request, if any.
    pub fn take_dump_request() -> bool {
        DUMP_REQUESTED.swap(false, Ordering::SeqCst)
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    let transport = match UdpTransport::bind(UdpConfig {
        ip: args.bind,
        batch: args.batch,
        socket_buffer_bytes: args.sockbuf,
        ..UdpConfig::loopback(args.base_port, args.cores as u16)
    }) {
        Ok(t) => Arc::new(t),
        Err(e) => {
            eprintln!(
                "error: cannot bind {}:{}..{}: {e}",
                args.bind,
                args.base_port,
                args.base_port + args.cores as u16 - 1
            );
            std::process::exit(1);
        }
    };

    let mut config = ServerConfig::for_test(args.cores, args.items);
    config.minos.threshold_mode = args.threshold;
    config.minos.discipline = args.discipline;
    config.minos.steal = args.steal;
    config.minos.shed_watermark = args.shed_watermark;
    config.minos.epoch_ns = 1_000_000_000; // the paper's 1 s epochs
    config.store =
        minos::kv::StoreConfig::for_items(args.cores * 4, args.items, args.mempool_bytes);
    config.store.capacity = CapacityConfig {
        policy: args.eviction,
        high_fraction: args.evict_high,
        low_fraction: args.evict_low,
        min_headroom_bytes: args.evict_headroom,
        ..CapacityConfig::default()
    };
    config.pin_cpus = args
        .pin_base
        .map(|base| (base..base + args.cores).collect());
    if let Err(e) = config.minos.validate() {
        eprintln!("error: {e}\n\n{USAGE}");
        std::process::exit(2);
    }

    human!(
        args,
        "minos-server: {} cores on {}:{}..{} ({} discipline{}, threshold {:?}, {} item slots, syscall batch {}{})",
        args.cores,
        args.bind,
        args.base_port,
        args.base_port + args.cores as u16 - 1,
        args.discipline.name(),
        if args.steal { " + steal" } else { "" },
        args.threshold,
        args.items,
        args.batch,
        match args.pin_base {
            Some(base) => format!(", pinned to cpus {}..{}", base, base + args.cores),
            None => String::new(),
        },
    );
    if args.eviction != EvictionPolicy::None {
        human!(
            args,
            "capacity tiering: {} eviction, watermarks {:.0}%/{:.0}% of {} bytes{}",
            args.eviction.name(),
            args.evict_high * 100.0,
            args.evict_low * 100.0,
            args.mempool_bytes,
            if args.evict_headroom > 0 {
                format!(", headroom floor {} bytes", args.evict_headroom)
            } else {
                String::new()
            },
        );
    }
    if args.shed_watermark > 0 {
        human!(
            args,
            "overload shedding: large requests answered Overloaded past {} queued per core",
            args.shed_watermark,
        );
    }
    if !args.fault.is_noop() {
        human!(
            args,
            "fault injection: rx drop={} dup={} reorder<={} delay<={}us, tx drop={} dup={} reorder<={} delay<={}us, seed {}",
            args.fault.rx.drop,
            args.fault.rx.dup,
            args.fault.rx.reorder,
            args.fault.rx.delay_us,
            args.fault.tx.drop,
            args.fault.tx.dup,
            args.fault.tx.reorder,
            args.fault.tx.delay_us,
            args.fault.seed,
        );
    }
    human!(args, "press Ctrl-C to drain and exit");

    let mut stats_sink = match StatsSink::open(&args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    signal::install();
    // The server always runs behind the fault layer; with the default
    // (no-fault) profile it is a pure passthrough, and with
    // `--fault-profile` the injected faults surface as `fault.*` in the
    // registry via the transport collector.
    let faulted = Arc::new(FaultTransport::new(Arc::clone(&transport), args.fault));
    let mut server = MinosServer::start_with_transport(config, faulted);
    let registry = server.registry();

    let started = Instant::now();
    let mut last_report = Instant::now();
    let mut last_stats = transport.stats();
    let mut next_snapshot = args.stats_interval.map(|iv| started + iv);
    loop {
        if signal::INTERRUPTED.load(Ordering::SeqCst) {
            human!(
                args,
                "\nminos-server: interrupt — draining in-flight requests"
            );
            break;
        }
        if let Some(d) = args.duration {
            if started.elapsed() >= d {
                human!(args, "minos-server: duration elapsed — draining");
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
        let now = Instant::now();
        let periodic_due = next_snapshot.map(|at| now >= at).unwrap_or(false);
        if periodic_due || signal::take_dump_request() {
            stats_sink.emit(&registry.snapshot().to_json_line());
            if periodic_due {
                // Fixed cadence from the start instant: a slow write
                // shifts one sample, not the whole timeline.
                let iv = args.stats_interval.expect("periodic_due implies interval");
                let mut at = next_snapshot.expect("periodic_due implies deadline");
                while at <= now {
                    at += iv;
                }
                next_snapshot = Some(at);
            }
        }
        if last_report.elapsed() >= Duration::from_secs(5) {
            let s = transport.stats();
            let secs = last_report.elapsed().as_secs_f64();
            human!(
                args,
                "rx {:.0}/s tx {:.0}/s (totals: rx {} tx {} dropped {}; epochs {})",
                (s.rx_packets - last_stats.rx_packets) as f64 / secs,
                (s.tx_packets - last_stats.tx_packets) as f64 / secs,
                s.rx_packets,
                s.tx_packets,
                s.tx_dropped,
                server.counters().epochs,
            );
            last_stats = s;
            last_report = Instant::now();
        }
    }

    // Graceful shutdown: in-flight handoffs finish (their replies go
    // out) before the polling threads stop.
    let drained = server.drain(Duration::from_secs(5));
    server.shutdown();
    let s = transport.stats();
    let io = transport.io_stats();
    let counters = server.counters();
    let store_stats = server.store().stats();
    human!(
        args,
        "minos-server: {} — rx {} packets, tx {} packets, {} tx drops, {} epochs",
        if drained { "drained" } else { "drain timeout" },
        s.rx_packets,
        s.tx_packets,
        s.tx_dropped,
        counters.epochs,
    );
    human!(
        args,
        "syscall batching: {} — {} rx syscalls for {} packets, {} tx syscalls for {} packets",
        if io.batched {
            "recvmmsg/sendmmsg"
        } else {
            "recv_from/send_to"
        },
        io.rx_syscalls,
        io.rx_packets,
        io.tx_syscalls,
        io.tx_packets,
    );
    human!(
        args,
        "rx buffer pool: {} hits / {} misses ({:.2}% hit rate), {} outstanding",
        io.pool_hits,
        io.pool_misses,
        io.pool_hit_rate() * 100.0,
        io.pool_outstanding,
    );
    human!(
        args,
        "zero-copy tx: {} value bytes copied on the reply path{}",
        io.tx_copied_bytes,
        if io.tx_copied_bytes == 0 {
            " (scatter-gather end to end)"
        } else {
            " — gather fallback engaged"
        },
    );
    human!(
        args,
        "one-copy ingest: {} value bytes copied wire -> mempool over {} puts; {} stale partial reassemblies evicted",
        counters.put_copied_bytes,
        store_stats.puts,
        counters.reassembly_evictions,
    );

    // Final post-drain snapshot: closes the timeline (so the last line
    // of a `--stats-file` is the authoritative end state — this is what
    // `minos-loadgen --server-stats` merges) and feeds the exit report.
    let final_snapshot = registry.snapshot();
    if args.stats_interval.is_some() {
        stats_sink.emit(&final_snapshot.to_json_line());
    }

    if args.json {
        // The legacy top-level keys are aliases of registry metrics;
        // see `minos::report::server_exit_report`.
        println!("{}", report::server_exit_report(drained, &final_snapshot));
    }
}
