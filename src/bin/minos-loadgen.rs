//! `minos-loadgen`: open-loop load generator speaking real UDP to a
//! `minos-server`.
//!
//! Implements the paper's measurement methodology (§5.3–5.4): requests
//! are injected open-loop at a configured rate with exponential
//! inter-arrival gaps, GETs target a uniformly random RX queue while
//! PUTs are keyhash-routed, send timestamps are echoed by the server,
//! and the run reports end-to-end latency percentiles together with a
//! strict zero-loss verdict ("we only report performance values
//! corresponding to scenarios in which the packet loss rate is equal
//! to 0").
//!
//! ```text
//! minos-loadgen --target 127.0.0.1:9000 --queues 4 \
//!               [--rate OPS] [--duration SECS] [--profile default|write]
//!               [--keys N] [--large-keys N] [--seed S] [--no-preload]
//! ```

use minos::core::client::Client;
use minos::net::{endpoint_for, Transport, UdpTransport};
use minos::workload::{AccessGenerator, Dataset, OpenLoop, Profile, Rng, DEFAULT_PROFILE};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    target_ip: Ipv4Addr,
    target_port: u16,
    queues: u16,
    rate: f64,
    duration: Duration,
    profile: Profile,
    keys: u64,
    large_keys: u64,
    seed: u64,
    preload: bool,
}

const USAGE: &str = "minos-loadgen: open-loop UDP load generator for minos-server

USAGE:
    minos-loadgen --target IP:BASEPORT --queues N [OPTIONS]

OPTIONS:
    --target IP:PORT   server address; PORT is the base port of queue 0
    --queues N         number of server RX queues (= server --cores)
    --rate OPS         offered load, requests/second (default 20000)
    --duration SECS    measured run length (default 10)
    --profile NAME     'default' (95:5 GET:PUT, p_L=0.125%) or 'write'
                       (50:50; the paper's write-intensive mix)
    --keys N           dataset size in keys (default 100000)
    --large-keys N     number of large keys (default 100)
    --seed S           RNG seed (default 42)
    --no-preload       skip the PUT preload phase
    -h, --help         this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        target_ip: Ipv4Addr::LOCALHOST,
        target_port: 9000,
        queues: 0,
        rate: 20_000.0,
        duration: Duration::from_secs(10),
        profile: DEFAULT_PROFILE,
        keys: 100_000,
        large_keys: 100,
        seed: 42,
        preload: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--target" => {
                let v = value("--target")?;
                let (ip, port) = v
                    .split_once(':')
                    .ok_or_else(|| format!("--target must be IP:PORT, got {v}"))?;
                args.target_ip = ip.parse().map_err(|e| format!("--target ip: {e}"))?;
                args.target_port = port.parse().map_err(|e| format!("--target port: {e}"))?;
            }
            "--queues" => {
                args.queues = value("--queues")?
                    .parse()
                    .map_err(|e| format!("--queues: {e}"))?
            }
            "--rate" => {
                args.rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?
            }
            "--duration" => {
                args.duration = Duration::from_secs_f64(
                    value("--duration")?
                        .parse()
                        .map_err(|e| format!("--duration: {e}"))?,
                )
            }
            "--profile" => {
                args.profile = match value("--profile")?.as_str() {
                    "default" => DEFAULT_PROFILE,
                    "write" => minos::workload::profiles::WRITE_INTENSIVE_PROFILE,
                    other => return Err(format!("unknown profile: {other}")),
                }
            }
            "--keys" => {
                args.keys = value("--keys")?
                    .parse()
                    .map_err(|e| format!("--keys: {e}"))?
            }
            "--large-keys" => {
                args.large_keys = value("--large-keys")?
                    .parse()
                    .map_err(|e| format!("--large-keys: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--no-preload" => args.preload = false,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.queues == 0 {
        return Err("--queues is required (match the server's --cores)".into());
    }
    if args.target_port.checked_add(args.queues - 1).is_none() {
        return Err(format!(
            "--target port {} + {} queues exceeds 65535",
            args.target_port, args.queues
        ));
    }
    if args.rate <= 0.0 {
        return Err("--rate must be positive".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    let server = endpoint_for(args.target_ip, args.target_port);
    let make_client = |client_id: u16| -> (Arc<UdpTransport>, Client) {
        let transport = match UdpTransport::bind_client(Ipv4Addr::UNSPECIFIED) {
            Ok(t) => Arc::new(t),
            Err(e) => {
                eprintln!("error: cannot bind client socket: {e}");
                std::process::exit(1);
            }
        };
        let endpoint = transport.local_endpoint(0);
        let client = Client::with_transport(
            Arc::clone(&transport) as Arc<dyn Transport>,
            endpoint,
            server,
            args.queues,
            client_id,
            args.seed ^ u64::from(client_id),
        );
        (transport, client)
    };

    let dataset = Dataset::new(
        args.keys,
        args.large_keys,
        0.4, // the paper's tiny fraction
        args.profile.large_max,
        args.seed,
    );
    let generator = AccessGenerator::new(
        dataset.clone(),
        args.profile.p_large,
        args.profile.get_ratio,
        args.profile.zipf_s,
    );

    println!(
        "minos-loadgen: target {}:{}+{}q, {} ops/s for {:?}, {} keys ({} large), profile p_L={:.4}% GET={:.0}%",
        args.target_ip,
        args.target_port,
        args.queues,
        args.rate,
        args.duration,
        args.keys,
        args.large_keys,
        args.profile.p_large * 100.0,
        args.profile.get_ratio * 100.0,
    );

    // ---- Preload: PUT every key at its dataset size so GETs hit.
    // A separate client keeps the measured latency histograms clean. ----
    if args.preload {
        let (_preload_transport, mut preload_client) = make_client(99);
        let t0 = Instant::now();
        let no_replies = |client: &Client| -> ! {
            eprintln!(
                "error: preload lost {} replies after {}s — is the server running with --cores={} at the target address?",
                client.totals().outstanding(),
                t0.elapsed().as_secs(),
                args.queues,
            );
            std::process::exit(1);
        };
        let mut preloaded = 0u64;
        // A stall deadline keyed to *progress*, not wall time: a large
        // --keys preload against a healthy server may legitimately take
        // minutes, while a dead target should be diagnosed in seconds.
        let mut last_completed = 0u64;
        let mut last_progress = t0;
        for key in 0..args.keys {
            let size = dataset.size_of(key) as usize;
            let value = vec![(key % 251) as u8; size];
            preload_client.send_put(key, &value, size > minos::wire::MAX_FRAG_CHUNK);
            preloaded += 1;
            // Keep the pipe shallow: replies are drained as we go, so
            // the preload can't overrun server rings. Bail out instead
            // of spinning forever when replies stop coming back.
            if preloaded.is_multiple_of(64) {
                while preload_client.totals().outstanding() > 256 {
                    preload_client.poll();
                    let completed = preload_client.totals().completed;
                    if completed > last_completed {
                        last_completed = completed;
                        last_progress = Instant::now();
                    } else if last_progress.elapsed() > Duration::from_secs(5) {
                        no_replies(&preload_client);
                    }
                }
            }
        }
        if !preload_client.drain(Duration::from_secs(30)) {
            no_replies(&preload_client);
        }
        println!(
            "preload: {} PUTs in {:.2}s ({} errors)",
            preloaded,
            t0.elapsed().as_secs_f64(),
            preload_client.totals().errors,
        );
    }

    let (transport, mut client) = make_client(1);

    // ---- Measured run: open-loop injection at the target rate. ----
    let mut arrivals = OpenLoop::new(args.rate, 0);
    let mut arrival_rng = Rng::new(args.seed ^ 0x9e37_79b9);
    let mut op_rng = Rng::new(args.seed.wrapping_mul(0x2545_f491_4f6c_dd1d));
    let start = Instant::now();
    let mut next_at = Duration::from_nanos(arrivals.next_arrival(&mut arrival_rng));
    let mut sent = 0u64;
    let mut behind_max = Duration::ZERO;
    while start.elapsed() < args.duration {
        let now = start.elapsed();
        if now >= next_at {
            behind_max = behind_max.max(now - next_at);
            let spec = generator.next_op(&mut op_rng);
            client.send(&spec);
            sent += 1;
            next_at = Duration::from_nanos(arrivals.next_arrival(&mut arrival_rng));
        }
        client.poll();
    }
    let elapsed = start.elapsed();
    let drained = client.drain(Duration::from_secs(10));
    let totals = client.totals();

    // ---- Report (the paper's zero-loss + tail-latency methodology). ----
    let completed = totals.completed;
    let outstanding = totals.outstanding();
    println!();
    println!("== minos-loadgen report ==");
    println!("offered rate:     {:.0} ops/s", args.rate);
    println!(
        "achieved:         {:.0} ops/s ({} ops in {:.2}s; max scheduling lag {:?})",
        completed as f64 / elapsed.as_secs_f64(),
        completed,
        elapsed.as_secs_f64(),
        behind_max,
    );
    println!(
        "sent/completed:   {sent} / {completed} ({} errors)",
        totals.errors
    );
    if let Some(q) = client.latency().quantiles() {
        println!("latency (all):    {q}");
    }
    if let Some(q) = client.latency_large().quantiles() {
        println!("latency (large):  {q}");
    } else {
        println!("latency (large):  no large requests completed");
    }
    let s = transport.stats();
    println!(
        "client transport: tx {} rx {} packets ({} tx drops)",
        s.tx_packets, s.rx_packets, s.tx_dropped,
    );
    if drained && outstanding == 0 {
        println!("zero-loss:        PASS (every request completed)");
    } else {
        println!(
            "zero-loss:        FAIL ({outstanding} requests lost) — per §5.4 this run's numbers should be discarded"
        );
        std::process::exit(3);
    }
}
