//! `minos-loadgen`: open-loop load generator speaking real UDP to a
//! `minos-server`.
//!
//! Implements the paper's measurement methodology (§5.3–5.4): requests
//! are injected open-loop at a configured rate with exponential
//! inter-arrival gaps, GETs target a uniformly random RX queue while
//! PUTs are keyhash-routed, send timestamps are echoed by the server,
//! and the run reports end-to-end latency percentiles together with a
//! strict zero-loss verdict ("we only report performance values
//! corresponding to scenarios in which the packet loss rate is equal
//! to 0").
//!
//! A single open-loop client tops out well below a busy-polling server's
//! capacity, so the offered load is split across `--clients` OS threads,
//! each with its own UDP socket and open-loop schedule; the report
//! merges per-client latency histograms into aggregate percentiles.
//! Each loop iteration drains *all* currently-due arrivals and sends
//! them as one coalesced burst (one `sendmmsg`), so a thread that falls
//! behind its schedule catches up without paying a syscall per overdue
//! request. `--retry-timeout-ms` optionally enables client-side
//! retransmission (the paper's §4.1 leaves retry to the client) for
//! lossy non-loopback links; the default stays the strict zero-loss
//! reporting mode.
//!
//! `--json` switches stdout to a machine-readable report (for CI gates)
//! and routes the human-readable report and all progress chatter to
//! stderr, so `loadgen --json > report.json` stays parseable even with
//! a server logging to the same console.
//!
//! ```text
//! minos-loadgen --target 127.0.0.1:9000 --queues 4 \
//!               [--clients N] [--rate OPS] [--duration SECS]
//!               [--profile default|write] [--p-large FRAC]
//!               [--keys N] [--large-keys N]
//!               [--seed S] [--no-preload] [--retry-timeout-ms MS]
//!               [--max-retries N] [--hedge] [--fault-profile SPEC]
//!               [--pin BASECPU] [--sockbuf BYTES]
//!               [--batch N] [--json]
//! ```

use minos::core::client::{Client, ClientTotals, HedgePolicy, RetryPolicy};
use minos::net::{
    endpoint_for, FaultProfile, FaultStats, FaultTransport, Transport, TransportStats, UdpConfig,
    UdpIoStats, UdpTransport,
};
use minos::obs::{MetricsRegistry, Snapshot};
use minos::report::{self, JsonObj};
use minos::stats::{LatencyHistogram, Quantiles};
use minos::workload::{
    AccessGenerator, ChurnConfig, ChurnGenerator, Dataset, OpSpec, OpenLoop, Operation, Profile,
    Rng, DEFAULT_PROFILE,
};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone)]
struct Args {
    target_ip: Ipv4Addr,
    target_port: u16,
    queues: u16,
    clients: u16,
    rate: f64,
    duration: Duration,
    profile: Profile,
    keys: u64,
    large_keys: u64,
    seed: u64,
    churn: Option<ChurnConfig>,
    preload: bool,
    retry: Option<RetryPolicy>,
    hedge: Option<HedgePolicy>,
    fault: Option<FaultProfile>,
    pin_base: Option<usize>,
    sockbuf: usize,
    batch: usize,
    server_stats: Option<String>,
    json: bool,
}

use minos::human;

const USAGE: &str = "minos-loadgen: open-loop UDP load generator for minos-server

USAGE:
    minos-loadgen --target IP:BASEPORT --queues N [OPTIONS]

OPTIONS:
    --target IP:PORT       server address; PORT is the base port of queue 0
    --queues N             number of server RX queues (= server --cores)
    --clients N            client threads, each with its own socket and
                           open-loop schedule at rate/N (default 1)
    --rate OPS             aggregate offered load, requests/second
                           (default 20000)
    --duration SECS        measured run length (default 10)
    --profile NAME         'default' (95:5 GET:PUT, p_L=0.125%) or 'write'
                           (50:50; the paper's write-intensive mix)
    --p-large FRAC         override the profile's large-request fraction
                           p_L (0..1), e.g. 0.02 for a fragmented-PUT
                           heavy run
    --s-large BYTES        override the profile's max large value size
                           s_L (default 500000). Under --fault-profile a
                           smaller s_L keeps per-reply fragment counts
                           low enough that the retry budget converges
    --keys N               dataset size in keys (default 100000)
    --large-keys N         number of large keys (default 100)
    --seed S               RNG seed (default 42)
    --churn                churn mode: a zipfian-reuse working set meant
                           to outgrow the server's mempool (pair with a
                           small server --mem and an --eviction-policy).
                           Replaces the paper profile; --keys sets the
                           population, the profile's GET ratio and zipf
                           skew still apply; no preload (the run builds
                           its own working set)
    --churn-value-min B    smallest churn value in bytes (default 64)
    --churn-value-max B    largest churn value in bytes (default 4096;
                           keep below the server's admission cutoff for
                           a reject-free run)
    --churn-ttl-ms MS      TTL stamped on every churn PUT (default 0 =
                           never expires)
    --no-preload           skip the PUT preload phase
    --retry-timeout-ms MS  resend a request unanswered for MS ms (default
                           off: the paper's strict zero-loss mode). The
                           timeout backs off exponentially (jittered, x2
                           per retry, capped at 8x); a request that
                           exhausts its budget is counted as timed_out —
                           explicit loss, never silent
    --max-retries N        resend budget per request (default 8)
    --hedge                hedged requests: a small request unanswered
                           past the adaptive hedge delay (the p99 of
                           observed service latency) is duplicated to
                           another RX queue; first reply wins, the
                           loser is counted in wasted_replies. Hedges
                           never touch the open-loop schedule clock
    --hedge-percentile P   service-latency percentile driving the hedge
                           delay (default 99)
    --hedge-min-delay-us N floor on the hedge delay (default 500)
    --hedge-max-delay-us N cap on the hedge delay, also used until
                           enough samples accumulate (default 100000)
    --fault-profile SPEC   wrap each measured client's transport in a
                           deterministic fault injector, e.g.
                           'drop=0.01,dup=0.001,reorder=8,seed=42'
                           (rx./tx. prefixes scope a direction). The
                           preload path stays clean; injected faults
                           are reported under \"fault\"
    --pin BASECPU          pin client thread c to cpu BASECPU+c
                           (sched_setaffinity; best-effort)
    --sockbuf BYTES        client socket buffer size (default 4 MiB)
    --batch N              max datagrams per recvmmsg/sendmmsg syscall
                           (default 32; 1 = one syscall per datagram);
                           also caps how many due arrivals one loop
                           iteration coalesces into a single send burst
    --server-stats PATH    merge the final server snapshot from PATH (a
                           server --stats-file JSONL timeline; the last
                           line is taken) into the --json report under
                           \"server_stats\"
    --json                 print a machine-readable JSON report to stdout
                           (the human report moves to stderr)
    -h, --help             this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        target_ip: Ipv4Addr::LOCALHOST,
        target_port: 9000,
        queues: 0,
        clients: 1,
        rate: 20_000.0,
        duration: Duration::from_secs(10),
        profile: DEFAULT_PROFILE,
        keys: 100_000,
        large_keys: 100,
        seed: 42,
        churn: None,
        preload: true,
        retry: None,
        hedge: None,
        fault: None,
        pin_base: None,
        sockbuf: 4 << 20,
        batch: minos::net::DEFAULT_SYSCALL_BATCH,
        server_stats: None,
        json: false,
    };
    let mut retry_timeout_ms = 0u64;
    let mut max_retries = 8u32;
    let mut hedge = false;
    let mut hedge_policy = HedgePolicy::default();
    let mut p_large_override: Option<f64> = None;
    let mut s_large_override: Option<u64> = None;
    let mut churn = false;
    let mut churn_value_min = 64u64;
    let mut churn_value_max = 4096u64;
    let mut churn_ttl_ms = 0u64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--target" => {
                let v = value("--target")?;
                let (ip, port) = v
                    .split_once(':')
                    .ok_or_else(|| format!("--target must be IP:PORT, got {v}"))?;
                args.target_ip = ip.parse().map_err(|e| format!("--target ip: {e}"))?;
                args.target_port = port.parse().map_err(|e| format!("--target port: {e}"))?;
            }
            "--queues" => {
                args.queues = value("--queues")?
                    .parse()
                    .map_err(|e| format!("--queues: {e}"))?
            }
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--rate" => {
                args.rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?
            }
            "--duration" => {
                args.duration = Duration::from_secs_f64(
                    value("--duration")?
                        .parse()
                        .map_err(|e| format!("--duration: {e}"))?,
                )
            }
            "--profile" => {
                args.profile = match value("--profile")?.as_str() {
                    "default" => DEFAULT_PROFILE,
                    "write" => minos::workload::profiles::WRITE_INTENSIVE_PROFILE,
                    other => return Err(format!("unknown profile: {other}")),
                }
            }
            "--p-large" => {
                p_large_override = Some(
                    value("--p-large")?
                        .parse()
                        .map_err(|e| format!("--p-large: {e}"))?,
                )
            }
            "--s-large" => {
                s_large_override = Some(
                    value("--s-large")?
                        .parse()
                        .map_err(|e| format!("--s-large: {e}"))?,
                )
            }
            "--keys" => {
                args.keys = value("--keys")?
                    .parse()
                    .map_err(|e| format!("--keys: {e}"))?
            }
            "--large-keys" => {
                args.large_keys = value("--large-keys")?
                    .parse()
                    .map_err(|e| format!("--large-keys: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--churn" => churn = true,
            "--churn-value-min" => {
                churn_value_min = value("--churn-value-min")?
                    .parse()
                    .map_err(|e| format!("--churn-value-min: {e}"))?
            }
            "--churn-value-max" => {
                churn_value_max = value("--churn-value-max")?
                    .parse()
                    .map_err(|e| format!("--churn-value-max: {e}"))?
            }
            "--churn-ttl-ms" => {
                churn_ttl_ms = value("--churn-ttl-ms")?
                    .parse()
                    .map_err(|e| format!("--churn-ttl-ms: {e}"))?
            }
            "--no-preload" => args.preload = false,
            "--retry-timeout-ms" => {
                retry_timeout_ms = value("--retry-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--retry-timeout-ms: {e}"))?
            }
            "--max-retries" => {
                max_retries = value("--max-retries")?
                    .parse()
                    .map_err(|e| format!("--max-retries: {e}"))?
            }
            "--hedge" => hedge = true,
            "--hedge-percentile" => {
                hedge_policy.percentile = value("--hedge-percentile")?
                    .parse()
                    .map_err(|e| format!("--hedge-percentile: {e}"))?
            }
            "--hedge-min-delay-us" => {
                hedge_policy.min_delay = Duration::from_micros(
                    value("--hedge-min-delay-us")?
                        .parse()
                        .map_err(|e| format!("--hedge-min-delay-us: {e}"))?,
                )
            }
            "--hedge-max-delay-us" => {
                hedge_policy.max_delay = Duration::from_micros(
                    value("--hedge-max-delay-us")?
                        .parse()
                        .map_err(|e| format!("--hedge-max-delay-us: {e}"))?,
                )
            }
            "--fault-profile" => {
                args.fault = Some(
                    FaultProfile::parse(&value("--fault-profile")?)
                        .map_err(|e| format!("--fault-profile: {e}"))?,
                )
            }
            "--pin" => {
                args.pin_base = Some(value("--pin")?.parse().map_err(|e| format!("--pin: {e}"))?)
            }
            "--sockbuf" => {
                args.sockbuf = value("--sockbuf")?
                    .parse()
                    .map_err(|e| format!("--sockbuf: {e}"))?
            }
            "--batch" => {
                args.batch = value("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?
            }
            "--server-stats" => args.server_stats = Some(value("--server-stats")?),
            "--json" => args.json = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.queues == 0 {
        return Err("--queues is required (match the server's --cores)".into());
    }
    if args.clients == 0 {
        return Err("--clients must be positive".into());
    }
    if args.target_port.checked_add(args.queues - 1).is_none() {
        return Err(format!(
            "--target port {} + {} queues exceeds 65535",
            args.target_port, args.queues
        ));
    }
    if args.rate <= 0.0 {
        return Err("--rate must be positive".into());
    }
    if let Some(p) = p_large_override {
        if !(0.0..=1.0).contains(&p) {
            return Err("--p-large must be in [0, 1]".into());
        }
        args.profile.p_large = p;
    }
    if let Some(s) = s_large_override {
        if s == 0 {
            return Err("--s-large must be positive".into());
        }
        args.profile.large_max = s;
    }
    if retry_timeout_ms > 0 {
        args.retry = Some(RetryPolicy::new(
            Duration::from_millis(retry_timeout_ms),
            max_retries,
        ));
    }
    if hedge {
        if !(1.0..=100.0).contains(&hedge_policy.percentile) {
            return Err("--hedge-percentile must be in [1, 100]".into());
        }
        if hedge_policy.max_delay.is_zero() || hedge_policy.min_delay > hedge_policy.max_delay {
            return Err(
                "hedge delays need 0 < --hedge-min-delay-us <= --hedge-max-delay-us".into(),
            );
        }
        if args.queues < 2 {
            return Err("--hedge needs >= 2 queues (the hedge copy goes to another queue)".into());
        }
        args.hedge = Some(hedge_policy);
    }
    if churn {
        if churn_value_min == 0 || churn_value_min > churn_value_max {
            return Err(format!(
                "churn needs 0 < --churn-value-min ({churn_value_min}) <= --churn-value-max ({churn_value_max})"
            ));
        }
        args.churn = Some(ChurnConfig {
            num_keys: args.keys,
            value_min: churn_value_min,
            value_max: churn_value_max,
            zipf_s: args.profile.zipf_s,
            get_ratio: args.profile.get_ratio,
            ttl_ms: churn_ttl_ms,
            salt: args.seed,
        });
        args.preload = false;
    }
    Ok(args)
}

/// Builds one client. `measured` clients get the chaos treatment —
/// their transport is wrapped in a [`FaultTransport`] when
/// `--fault-profile` is set and hedging is armed when `--hedge` is set;
/// the preload client always runs on the clean path (faults are a
/// property of the measured run, not of dataset construction). The
/// typed [`UdpTransport`] is returned alongside for `io_stats`, and the
/// fault layer (when present) for its injection counters.
type FaultLayer = Option<Arc<FaultTransport<UdpTransport>>>;

fn make_client(
    args: &Args,
    client_id: u16,
    measured: bool,
) -> (Arc<UdpTransport>, FaultLayer, Client) {
    let config = UdpConfig {
        socket_buffer_bytes: args.sockbuf,
        batch: args.batch,
        // One poll can drain up to 4096 replies whose payloads are all
        // alive at once; size the pool past that so the steady-state
        // client RX path never falls back to the allocator.
        pool_slots: 8192,
        ..UdpConfig::client(Ipv4Addr::UNSPECIFIED)
    };
    let transport = match UdpTransport::bind_client_with(config) {
        Ok(t) => Arc::new(t),
        Err(e) => {
            eprintln!("error: cannot bind client socket: {e}");
            std::process::exit(1);
        }
    };
    let endpoint = transport.local_endpoint(0);
    let server = endpoint_for(args.target_ip, args.target_port);
    let (dyn_transport, fault): (Arc<dyn Transport>, FaultLayer) =
        match args.fault.filter(|_| measured) {
            Some(profile) => {
                let ft = Arc::new(FaultTransport::new(Arc::clone(&transport), profile));
                (Arc::clone(&ft) as Arc<dyn Transport>, Some(ft))
            }
            None => (Arc::clone(&transport) as Arc<dyn Transport>, None),
        };
    let mut client = Client::with_transport(
        dyn_transport,
        endpoint,
        server,
        args.queues,
        client_id,
        args.seed ^ u64::from(client_id),
    );
    if let Some(policy) = args.retry {
        client = client.with_retry(policy);
    }
    if measured {
        if let Some(policy) = args.hedge {
            client = client.with_hedging(policy);
        }
    }
    (transport, fault, client)
}

/// The per-thread request source: the paper's access generator, or the
/// churn generator when `--churn` is in force.
enum Generator {
    Access(AccessGenerator),
    Churn(ChurnGenerator),
}

impl Generator {
    fn next_op(&self, rng: &mut Rng) -> OpSpec {
        match self {
            Generator::Access(g) => g.next_op(rng),
            Generator::Churn(g) => g.next_op(rng),
        }
    }
}

fn make_generator(args: &Args) -> Generator {
    match args.churn {
        Some(cfg) => Generator::Churn(ChurnGenerator::new(cfg)),
        None => {
            let dataset = Dataset::new(
                args.keys,
                args.large_keys,
                0.4, // the paper's tiny fraction
                args.profile.large_max,
                args.seed,
            );
            Generator::Access(AccessGenerator::new(
                dataset,
                args.profile.p_large,
                args.profile.get_ratio,
                args.profile.zipf_s,
            ))
        }
    }
}

/// What one measured client thread hands back for merging.
struct ClientReport {
    sent: u64,
    totals: ClientTotals,
    latency: LatencyHistogram,
    latency_large: LatencyHistogram,
    service_latency: LatencyHistogram,
    behind_max: Duration,
    elapsed: Duration,
    stats: TransportStats,
    io: UdpIoStats,
    drained: bool,
    /// Send bursts issued (each is one `tx_burst`).
    flushes: u64,
    /// Largest number of requests coalesced into one burst.
    coalesced_max: u64,
    /// PUT requests sent.
    puts_sent: u64,
    /// Value bytes carried by those PUTs — what a one-copy server
    /// ingest must report as its `put_copied_bytes`, byte for byte.
    put_value_bytes: u64,
    /// Stale partial replies this client's reassembler timed out.
    reassembly_evictions: u64,
    /// Value bytes copied while reassembling multi-fragment replies
    /// (exactly once per received large-GET value byte).
    reply_copied_bytes: u64,
    /// Faults the injector planted on this client's transport (all
    /// zero without `--fault-profile`).
    fault: FaultStats,
    /// Pending-table size after the drain — the independent check on
    /// `totals.outstanding()`'s counter arithmetic.
    pending_len: u64,
}

/// One client thread's measured run: open-loop injection at
/// `rate / clients` for `duration`, then a drain. Every loop iteration
/// drains all currently-due arrivals (capped at the syscall batch) and
/// sends them as one coalesced burst.
fn run_client(args: &Args, client_idx: u16) -> ClientReport {
    if let Some(base) = args.pin_base {
        let cpu = base + client_idx as usize;
        if let Err(e) = minos::net::affinity::pin_current_thread(cpu) {
            eprintln!("loadgen client {client_idx}: pinning to cpu {cpu} failed: {e}");
        }
    }
    // Client ids 1..=N (the preloader uses 99 + N).
    let (transport, fault, mut client) = make_client(args, 1 + client_idx, true);
    let generator = make_generator(args);

    let rate = args.rate / f64::from(args.clients);
    // The injection schedule lives on the *client's* clock so each
    // arrival's deadline can ride along to `send_batch_at` — latency is
    // measured from that deadline, not from whenever this loop got
    // around to the send (the coordinated-omission fix).
    let run_start_ns = client.now_ns();
    let mut arrivals = OpenLoop::new(rate, run_start_ns);
    let mut arrival_rng = Rng::new(args.seed ^ 0x9e37_79b9 ^ (u64::from(client_idx) << 17));
    let mut op_rng = Rng::new(
        (args.seed ^ (u64::from(client_idx) + 1).wrapping_mul(0x5851_f42d_4c95_7f2d))
            .wrapping_mul(0x2545_f491_4f6c_dd1d),
    );
    let start = Instant::now();
    let mut next_at = arrivals.next_arrival(&mut arrival_rng);
    let mut sent = 0u64;
    let mut behind_max_ns = 0u64;
    let mut flushes = 0u64;
    let mut coalesced_max = 0u64;
    let mut puts_sent = 0u64;
    let mut put_value_bytes = 0u64;
    let coalesce_cap = args.batch.max(1);
    let mut due: Vec<(OpSpec, u64)> = Vec::with_capacity(coalesce_cap);
    while start.elapsed() < args.duration {
        let now = client.now_ns();
        // Drain every arrival whose time has come into one burst; the
        // cap keeps a burst inside one sendmmsg, and anything still due
        // goes out on the immediately following iteration. Each op
        // keeps its scheduled deadline.
        due.clear();
        while now >= next_at && due.len() < coalesce_cap {
            behind_max_ns = behind_max_ns.max(now - next_at);
            due.push((generator.next_op(&mut op_rng), next_at));
            next_at = arrivals.next_arrival(&mut arrival_rng);
        }
        if !due.is_empty() {
            client.send_batch_at(&due);
            sent += due.len() as u64;
            for (spec, _) in &due {
                if spec.op == Operation::Put {
                    puts_sent += 1;
                    put_value_bytes += spec.item_size;
                }
            }
            flushes += 1;
            coalesced_max = coalesced_max.max(due.len() as u64);
        }
        client.poll();
    }
    let elapsed = start.elapsed();
    let drained = client.drain(Duration::from_secs(10));
    if let Some(f) = &fault {
        // Keep polling past the reorder quiescence grace so the
        // injector's hold buffers flush (straggler duplicate/late
        // replies) and their RX-pool slots return — the report's pool
        // gauge must distinguish a leak from a still-armed hold.
        let grace = Duration::from_micros(f.profile().reorder_hold_us * 2 + 5_000);
        let flush_deadline = Instant::now() + grace;
        while Instant::now() < flush_deadline {
            client.poll();
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let reassembly_evictions = client.reassembly_evictions();
    ClientReport {
        sent,
        totals: client.totals(),
        latency: client.latency().clone(),
        latency_large: client.latency_large().clone(),
        service_latency: client.service_latency().clone(),
        behind_max: Duration::from_nanos(behind_max_ns),
        elapsed,
        stats: transport.stats(),
        io: transport.io_stats(),
        drained,
        flushes,
        coalesced_max,
        puts_sent,
        put_value_bytes,
        reassembly_evictions,
        reply_copied_bytes: client.reply_copied_bytes(),
        fault: fault.map(|f| f.fault_stats()).unwrap_or_default(),
        pending_len: client.pending_len(),
    }
}

fn preload(args: &Args, dataset: &Dataset) {
    let (_preload_transport, _no_faults, mut preload_client) =
        make_client(args, 99 + args.clients, false);
    let t0 = Instant::now();
    let no_replies = |client: &Client| -> ! {
        eprintln!(
            "error: preload lost {} replies after {}s — is the server running with --cores={} at the target address?",
            client.totals().outstanding(),
            t0.elapsed().as_secs(),
            args.queues,
        );
        std::process::exit(1);
    };
    let mut preloaded = 0u64;
    // A stall deadline keyed to *progress*, not wall time: a large
    // --keys preload against a healthy server may legitimately take
    // minutes, while a dead target should be diagnosed in seconds.
    let mut last_completed = 0u64;
    let mut last_progress = t0;
    for key in 0..args.keys {
        let size = dataset.size_of(key) as usize;
        let value = vec![(key % 251) as u8; size];
        preload_client.send_put(key, &value, size > minos::wire::MAX_FRAG_CHUNK);
        preloaded += 1;
        // Keep the pipe shallow: replies are drained as we go, so
        // the preload can't overrun server rings. Bail out instead
        // of spinning forever when replies stop coming back.
        if preloaded.is_multiple_of(64) {
            while preload_client.totals().outstanding() > 256 {
                preload_client.poll();
                let completed = preload_client.totals().completed;
                if completed > last_completed {
                    last_completed = completed;
                    last_progress = Instant::now();
                } else if last_progress.elapsed() > Duration::from_secs(5) {
                    no_replies(&preload_client);
                }
            }
        }
    }
    if !preload_client.drain(Duration::from_secs(30)) {
        no_replies(&preload_client);
    }
    human!(
        args,
        "preload: {} PUTs in {:.2}s ({} errors)",
        preloaded,
        t0.elapsed().as_secs_f64(),
        preload_client.totals().errors,
    );
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    human!(
        args,
        "minos-loadgen: target {}:{}+{}q, {} clients x {:.0} ops/s for {:?}, {} keys ({} large), profile p_L={:.4}% GET={:.0}%{}",
        args.target_ip,
        args.target_port,
        args.queues,
        args.clients,
        args.rate / f64::from(args.clients),
        args.duration,
        args.keys,
        args.large_keys,
        args.profile.p_large * 100.0,
        args.profile.get_ratio * 100.0,
        match args.retry {
            Some(p) => format!(
                ", retry {}ms x{}{}",
                p.timeout.as_millis(),
                p.max_retries,
                if args.hedge.is_some() { " + hedging" } else { "" },
            ),
            None if args.hedge.is_some() => ", hedging".into(),
            None => ", zero-loss mode".into(),
        },
    );
    if let Some(p) = &args.fault {
        human!(
            args,
            "fault injection:  drop={}/{} dup={}/{} reorder<={}/{} delay<={}us/{}us (rx/tx), seed {}",
            p.rx.drop,
            p.tx.drop,
            p.rx.dup,
            p.tx.dup,
            p.rx.reorder,
            p.tx.reorder,
            p.rx.delay_us,
            p.tx.delay_us,
            p.seed,
        );
    }

    if let Some(cfg) = &args.churn {
        let ws = ChurnGenerator::new(*cfg).working_set_bytes();
        human!(
            args,
            "churn mode: {} keys x {}..{} bytes = {} byte working set, ttl {} ms, no preload",
            cfg.num_keys,
            cfg.value_min,
            cfg.value_max,
            ws,
            cfg.ttl_ms,
        );
    }

    // ---- Preload: PUT every key at its dataset size so GETs hit.
    // A separate client keeps the measured latency histograms clean. ----
    if args.preload {
        let dataset = Dataset::new(
            args.keys,
            args.large_keys,
            0.4,
            args.profile.large_max,
            args.seed,
        );
        preload(&args, &dataset);
    }

    // ---- Measured run: N threads, each open-loop at rate/N. ----
    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let args = &args;
                scope.spawn(move || run_client(args, c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // ---- Merge + report (the paper's zero-loss + tail methodology). ----
    let mut latency = LatencyHistogram::new();
    let mut latency_large = LatencyHistogram::new();
    let mut service_latency = LatencyHistogram::new();
    let mut sent = 0u64;
    let mut completed = 0u64;
    let mut errors = 0u64;
    let mut retransmits = 0u64;
    let mut outstanding = 0u64;
    let mut timed_out = 0u64;
    let mut hedges_sent = 0u64;
    let mut hedge_wins = 0u64;
    let mut wasted_replies = 0u64;
    let mut overloaded = 0u64;
    let mut fault = FaultStats::default();
    let mut accounting_warnings = 0u64;
    let mut behind_max = Duration::ZERO;
    let mut elapsed = Duration::ZERO;
    let mut tx_packets = 0u64;
    let mut rx_packets = 0u64;
    let mut tx_dropped = 0u64;
    let mut rx_syscalls = 0u64;
    let mut tx_syscalls = 0u64;
    let mut batched = false;
    let mut all_drained = true;
    let mut flushes = 0u64;
    let mut coalesced_max = 0u64;
    let mut pool_hits = 0u64;
    let mut pool_misses = 0u64;
    let mut pool_outstanding = 0u64;
    let mut tx_copied_bytes = 0u64;
    let mut puts_sent = 0u64;
    let mut put_value_bytes = 0u64;
    let mut reassembly_evictions = 0u64;
    let mut reply_copied_bytes = 0u64;
    for r in &reports {
        latency.merge(&r.latency);
        latency_large.merge(&r.latency_large);
        service_latency.merge(&r.service_latency);
        sent += r.sent;
        completed += r.totals.completed;
        errors += r.totals.errors;
        retransmits += r.totals.retransmits;
        outstanding += r.totals.outstanding();
        timed_out += r.totals.timed_out;
        hedges_sent += r.totals.hedges_sent;
        hedge_wins += r.totals.hedge_wins;
        wasted_replies += r.totals.wasted_replies;
        overloaded += r.totals.overloaded;
        fault.absorb(&r.fault);
        // The accounting identity, checked with *independent* counters:
        // requests this loop scheduled must equal what the client
        // transmitted, and the derived outstanding() must equal the
        // actual pending-table size. Together they pin
        // sent == completed + outstanding + timed_out to reality.
        if r.sent != r.totals.sent {
            eprintln!(
                "loadgen: accounting warning: scheduled {} requests but client counted {} sent",
                r.sent, r.totals.sent,
            );
            accounting_warnings += 1;
        }
        if r.totals.outstanding() != r.pending_len {
            eprintln!(
                "loadgen: accounting warning: outstanding() = {} but pending table holds {}",
                r.totals.outstanding(),
                r.pending_len,
            );
            accounting_warnings += 1;
        }
        behind_max = behind_max.max(r.behind_max);
        elapsed = elapsed.max(r.elapsed);
        tx_packets += r.stats.tx_packets;
        rx_packets += r.stats.rx_packets;
        tx_dropped += r.stats.tx_dropped;
        rx_syscalls += r.io.rx_syscalls;
        tx_syscalls += r.io.tx_syscalls;
        batched |= r.io.batched;
        all_drained &= r.drained;
        flushes += r.flushes;
        coalesced_max = coalesced_max.max(r.coalesced_max);
        pool_hits += r.io.pool_hits;
        pool_misses += r.io.pool_misses;
        pool_outstanding += r.io.pool_outstanding;
        tx_copied_bytes += r.io.tx_copied_bytes;
        puts_sent += r.puts_sent;
        put_value_bytes += r.put_value_bytes;
        reassembly_evictions += r.reassembly_evictions;
        reply_copied_bytes += r.reply_copied_bytes;
    }
    // A timed-out request is an explicit loss: it was abandoned after
    // its retry budget, so a run that timed anything out is not
    // zero-loss even though the drain terminated cleanly.
    let zero_loss = all_drained && outstanding == 0 && timed_out == 0;
    let pool_hit_rate = minos::net::pool::hit_rate(pool_hits, pool_misses);

    human!(args, "");
    human!(args, "== minos-loadgen report ==");
    human!(
        args,
        "offered rate:     {:.0} ops/s across {} clients",
        args.rate,
        args.clients
    );
    human!(
        args,
        "achieved:         {:.0} ops/s ({} ops in {:.2}s; max scheduling lag {:?})",
        completed as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        completed,
        elapsed.as_secs_f64(),
        behind_max,
    );
    human!(
        args,
        "sent/completed:   {sent} / {completed} ({errors} errors)"
    );
    if args.retry.is_some() {
        human!(
            args,
            "retransmits:      {retransmits} ({timed_out} timed out past the retry budget)"
        );
    }
    if args.hedge.is_some() {
        human!(
            args,
            "hedging:          {hedges_sent} hedges sent, {hedge_wins} won, {wasted_replies} wasted replies"
        );
    }
    if overloaded > 0 {
        human!(
            args,
            "overloaded:       {overloaded} requests shed by the server (client backed off)"
        );
    }
    if args.fault.is_some() {
        human!(
            args,
            "fault injection:  {} events (rx: {} dropped, {} dup'd, {} reordered, {} delayed; tx: {} dropped, {} dup'd, {} reordered, {} delayed)",
            fault.total(),
            fault.rx_dropped,
            fault.rx_duplicated,
            fault.rx_reordered,
            fault.rx_delayed,
            fault.tx_dropped,
            fault.tx_duplicated,
            fault.tx_reordered,
            fault.tx_delayed,
        );
    }
    if accounting_warnings > 0 {
        human!(
            args,
            "accounting:       {accounting_warnings} WARNINGS — counters and tables disagree, treat this run as suspect"
        );
    }
    if args.clients > 1 {
        for (c, r) in reports.iter().enumerate() {
            match r.latency.quantiles() {
                Some(q) => human!(
                    args,
                    "client {c:>3}:       sent {} completed {} p50 {:.1}us p99 {:.1}us p99.9 {:.1}us{}",
                    r.sent,
                    r.totals.completed,
                    q.p50_us,
                    q.p99_us,
                    q.p999_us,
                    if r.totals.outstanding() > 0 {
                        format!(" ({} lost)", r.totals.outstanding())
                    } else {
                        String::new()
                    },
                ),
                None => human!(
                    args,
                    "client {c:>3}:       sent {} completed {} (no completions)",
                    r.sent,
                    r.totals.completed
                ),
            }
        }
    }
    if let Some(q) = latency.quantiles() {
        human!(args, "latency (all):    {q}");
    }
    if let Some(q) = service_latency.quantiles() {
        human!(
            args,
            "latency (svc):    {q} (from first transmission; the gap to the line above is scheduling lag)"
        );
    }
    if let Some(q) = latency_large.quantiles() {
        human!(args, "latency (large):  {q}");
    } else {
        human!(args, "latency (large):  no large requests completed");
    }
    human!(
        args,
        "client transport: tx {tx_packets} rx {rx_packets} packets ({tx_dropped} tx drops); {} — {rx_syscalls} rx / {tx_syscalls} tx syscalls",
        if batched {
            "recvmmsg/sendmmsg"
        } else {
            "recv_from/send_to"
        },
    );
    human!(
        args,
        "coalescing:       {flushes} send bursts for {sent} requests ({:.2} reqs/burst avg, {coalesced_max} max); {:.2} pkts/tx-syscall",
        sent as f64 / (flushes.max(1)) as f64,
        tx_packets as f64 / (tx_syscalls.max(1)) as f64,
    );
    human!(
        args,
        "rx buffer pool:   {pool_hits} hits / {pool_misses} misses ({:.2}% hit rate), {pool_outstanding} outstanding",
        pool_hit_rate * 100.0,
    );
    human!(
        args,
        "puts:             {puts_sent} sent carrying {put_value_bytes} value bytes (a one-copy server ingest reports put_copied_bytes == this)",
    );
    human!(
        args,
        "zero-copy tx:     {tx_copied_bytes} value bytes copied on the send path{}",
        if tx_copied_bytes == 0 {
            " (scatter-gather end to end)"
        } else {
            " — gather fallback engaged"
        },
    );
    if reassembly_evictions > 0 {
        human!(
            args,
            "reassembly:       {reassembly_evictions} stale partial replies evicted (fragments lost mid-message)",
        );
    }
    if zero_loss {
        if retransmits == 0 {
            human!(args, "zero-loss:        PASS (every request completed)");
        } else {
            human!(
                args,
                "zero-loss:        PASS after {retransmits} retransmits — not a §5.4 zero-loss measurement"
            );
        }
    } else {
        human!(
            args,
            "zero-loss:        FAIL ({outstanding} outstanding, {timed_out} timed out) — per §5.4 this run's numbers should be discarded"
        );
    }

    if args.json {
        let server_stats = read_server_stats(&args);
        println!(
            "{}",
            json_report(
                &args,
                &reports,
                JsonTotals {
                    sent,
                    completed,
                    errors,
                    retransmits,
                    outstanding,
                    timed_out,
                    hedges_sent,
                    hedge_wins,
                    wasted_replies,
                    overloaded,
                    fault,
                    accounting_warnings,
                    elapsed,
                    behind_max,
                    tx_packets,
                    rx_packets,
                    tx_dropped,
                    rx_syscalls,
                    tx_syscalls,
                    batched,
                    flushes,
                    coalesced_max,
                    pool_hits,
                    pool_misses,
                    pool_outstanding,
                    tx_copied_bytes,
                    puts_sent,
                    put_value_bytes,
                    reassembly_evictions,
                    reply_copied_bytes,
                    zero_loss,
                    latency: latency.quantiles(),
                    latency_large: latency_large.quantiles(),
                    service_latency: service_latency.quantiles(),
                },
                &server_stats,
            )
        );
    }
    if !zero_loss {
        std::process::exit(3);
    }
}

/// Everything the JSON report needs, merged across client threads.
struct JsonTotals {
    sent: u64,
    completed: u64,
    errors: u64,
    retransmits: u64,
    outstanding: u64,
    timed_out: u64,
    hedges_sent: u64,
    hedge_wins: u64,
    wasted_replies: u64,
    overloaded: u64,
    fault: FaultStats,
    accounting_warnings: u64,
    elapsed: Duration,
    behind_max: Duration,
    tx_packets: u64,
    rx_packets: u64,
    tx_dropped: u64,
    rx_syscalls: u64,
    tx_syscalls: u64,
    batched: bool,
    flushes: u64,
    coalesced_max: u64,
    pool_hits: u64,
    pool_misses: u64,
    pool_outstanding: u64,
    tx_copied_bytes: u64,
    puts_sent: u64,
    put_value_bytes: u64,
    reassembly_evictions: u64,
    reply_copied_bytes: u64,
    zero_loss: bool,
    latency: Option<Quantiles>,
    latency_large: Option<Quantiles>,
    service_latency: Option<Quantiles>,
}

/// Loads the final server snapshot for `--server-stats`: the last
/// non-empty line of the server's `--stats-file` timeline, validated as
/// a snapshot and passed through verbatim. Returns `"null"` (with a
/// stderr warning) when the file is missing or malformed, so the report
/// shape is stable either way.
fn read_server_stats(args: &Args) -> String {
    let Some(path) = &args.server_stats else {
        return "null".into();
    };
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("minos-loadgen: --server-stats {path}: {e}");
            return "null".into();
        }
    };
    let Some(line) = content.lines().rev().find(|l| !l.trim().is_empty()) else {
        eprintln!("minos-loadgen: --server-stats {path}: empty timeline");
        return "null".into();
    };
    match Snapshot::parse_json_line(line) {
        Ok(_) => line.to_string(),
        Err(e) => {
            eprintln!("minos-loadgen: --server-stats {path}: not a snapshot line: {e}");
            "null".into()
        }
    }
}

/// The merged run as canonical dotted metrics (`client.*`,
/// `transport.*`, `pool.*`) — the same registry/snapshot machinery the
/// server uses, so one consumer can parse both sides of a run.
fn metrics_json(t: &JsonTotals, pool_hit_rate: f64) -> String {
    let reg = MetricsRegistry::new();
    reg.counter("client.sent").add(t.sent);
    reg.counter("client.completed").add(t.completed);
    reg.counter("client.errors").add(t.errors);
    reg.counter("client.retransmits").add(t.retransmits);
    reg.counter("client.outstanding").add(t.outstanding);
    reg.counter("client.timed_out").add(t.timed_out);
    reg.counter("client.hedges_sent").add(t.hedges_sent);
    reg.counter("client.hedge_wins").add(t.hedge_wins);
    reg.counter("client.wasted_replies").add(t.wasted_replies);
    reg.counter("client.overloaded").add(t.overloaded);
    reg.counter("client.accounting_warnings")
        .add(t.accounting_warnings);
    reg.counter("client.puts_sent").add(t.puts_sent);
    reg.counter("client.put_value_bytes").add(t.put_value_bytes);
    reg.counter("client.reassembly_evictions")
        .add(t.reassembly_evictions);
    reg.counter("client.reply_copied_bytes")
        .add(t.reply_copied_bytes);
    reg.counter("client.flushes").add(t.flushes);
    reg.counter("transport.tx_packets").add(t.tx_packets);
    reg.counter("transport.rx_packets").add(t.rx_packets);
    reg.counter("transport.tx_dropped").add(t.tx_dropped);
    reg.counter("transport.rx_syscalls").add(t.rx_syscalls);
    reg.counter("transport.tx_syscalls").add(t.tx_syscalls);
    reg.counter("transport.tx_copied_bytes")
        .add(t.tx_copied_bytes);
    reg.gauge("transport.batched")
        .set(if t.batched { 1.0 } else { 0.0 });
    reg.counter("pool.hits").add(t.pool_hits);
    reg.counter("pool.misses").add(t.pool_misses);
    reg.gauge("pool.outstanding").set(t.pool_outstanding as f64);
    reg.gauge("pool.hit_rate").set(pool_hit_rate);
    reg.snapshot().metrics_json()
}

/// The machine-readable report `--json` prints to stdout, built on
/// [`minos::report::JsonObj`]. The legacy field names are frozen (CI
/// parses them); `client`, `metrics` and `server_stats` are additive.
fn json_report(args: &Args, reports: &[ClientReport], t: JsonTotals, server_stats: &str) -> String {
    let pool_hit_rate = minos::net::pool::hit_rate(t.pool_hits, t.pool_misses);
    let per_client: Vec<String> = reports
        .iter()
        .map(|r| {
            JsonObj::new()
                .u64("sent", r.sent)
                .u64("completed", r.totals.completed)
                .u64("outstanding", r.totals.outstanding())
                .u64("flushes", r.flushes)
                .u64("coalesced_max", r.coalesced_max)
                .raw("latency_us", &report::quantiles_json(r.latency.quantiles()))
                .finish()
        })
        .collect();
    let transport = JsonObj::new()
        .bool("batched", t.batched)
        .u64("tx_packets", t.tx_packets)
        .u64("rx_packets", t.rx_packets)
        .u64("tx_dropped", t.tx_dropped)
        .u64("tx_syscalls", t.tx_syscalls)
        .u64("rx_syscalls", t.rx_syscalls)
        .f64(
            "pkts_per_tx_syscall",
            t.tx_packets as f64 / (t.tx_syscalls.max(1)) as f64,
            3,
        )
        .f64(
            "pkts_per_rx_syscall",
            t.rx_packets as f64 / (t.rx_syscalls.max(1)) as f64,
            3,
        )
        .u64("tx_copied_bytes", t.tx_copied_bytes)
        .finish();
    let coalescing = JsonObj::new()
        .u64("flushes", t.flushes)
        .f64(
            "avg_per_flush",
            t.sent as f64 / (t.flushes.max(1)) as f64,
            3,
        )
        .u64("max_per_flush", t.coalesced_max)
        .finish();
    let pool = JsonObj::new()
        .u64("hits", t.pool_hits)
        .u64("misses", t.pool_misses)
        .u64("outstanding", t.pool_outstanding)
        .f64("hit_rate", pool_hit_rate, 6)
        .finish();
    let client = JsonObj::new()
        .u64("reassembly_evictions", t.reassembly_evictions)
        .u64("reply_copied_bytes", t.reply_copied_bytes)
        .finish();
    let fault = match &args.fault {
        None => "null".to_string(),
        Some(_) => JsonObj::new()
            .u64("rx_dropped", t.fault.rx_dropped)
            .u64("rx_duplicated", t.fault.rx_duplicated)
            .u64("rx_reordered", t.fault.rx_reordered)
            .u64("rx_delayed", t.fault.rx_delayed)
            .u64("rx_blackholed", t.fault.rx_blackholed)
            .u64("tx_dropped", t.fault.tx_dropped)
            .u64("tx_duplicated", t.fault.tx_duplicated)
            .u64("tx_reordered", t.fault.tx_reordered)
            .u64("tx_delayed", t.fault.tx_delayed)
            .u64("total", t.fault.total())
            .finish(),
    };
    let churn = match &args.churn {
        None => "null".to_string(),
        Some(cfg) => JsonObj::new()
            .u64("keys", cfg.num_keys)
            .u64("value_min", cfg.value_min)
            .u64("value_max", cfg.value_max)
            .u64("ttl_ms", cfg.ttl_ms)
            .u64(
                "working_set_bytes",
                ChurnGenerator::new(*cfg).working_set_bytes(),
            )
            .finish(),
    };
    JsonObj::new()
        .f64("offered_rate", args.rate, 1)
        .u64("clients", u64::from(args.clients))
        .f64("duration_s", args.duration.as_secs_f64(), 3)
        .f64("elapsed_s", t.elapsed.as_secs_f64(), 3)
        .f64(
            "achieved_rate",
            t.completed as f64 / t.elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
            1,
        )
        .f64("max_scheduling_lag_us", t.behind_max.as_secs_f64() * 1e6, 1)
        .u64("sent", t.sent)
        .u64("completed", t.completed)
        .u64("errors", t.errors)
        .u64("retransmits", t.retransmits)
        .u64("outstanding", t.outstanding)
        .u64("timed_out", t.timed_out)
        .bool("hedging", args.hedge.is_some())
        .u64("hedges_sent", t.hedges_sent)
        .u64("hedge_wins", t.hedge_wins)
        .u64("wasted_replies", t.wasted_replies)
        .u64("overloaded", t.overloaded)
        .u64("accounting_warnings", t.accounting_warnings)
        .u64("puts_sent", t.puts_sent)
        .u64("put_value_bytes", t.put_value_bytes)
        .bool("zero_loss", t.zero_loss)
        .raw("latency_us", &report::quantiles_json(t.latency))
        .raw("latency_large_us", &report::quantiles_json(t.latency_large))
        .raw(
            "service_latency_us",
            &report::quantiles_json(t.service_latency),
        )
        .raw("transport", &transport)
        .raw("coalescing", &coalescing)
        .raw("pool", &pool)
        .raw("client", &client)
        .raw("fault", &fault)
        .raw("churn", &churn)
        .raw("metrics", &metrics_json(&t, pool_hit_rate))
        .raw("server_stats", server_stats)
        .raw("per_client", &format!("[{}]", per_client.join(",")))
        .finish()
}
