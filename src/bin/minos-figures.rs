//! `minos-figures`: rate sweeps reproducing the paper's figures over
//! real UDP.
//!
//! Runs each requested policy (size-aware Minos vs the HKH and SHO
//! baselines) in-process over SO_REUSEPORT UDP loopback sockets and
//! sweeps the offered rate ladder, printing one JSON sweep point per
//! line to stdout as it lands (see `minos::figures::SweepPoint` for the
//! schema). `--out` additionally writes the whole sweep as a JSON array
//! — the format of the committed `BENCH_fig_*.json` files.
//!
//! Latency is measured from each request's *scheduled* open-loop
//! arrival, so points past the saturation knee report the queueing
//! delay overload causes rather than coordinated-omission-filtered
//! service times.
//!
//! ```text
//! minos-figures --rates 20000,40000,60000,80000 \
//!               [--policies minos,hkh,sho] [--disciplines LIST]
//!               [--cores N] [--clients N]
//!               [--duration SECS] [--keys N] [--large-keys N]
//!               [--profile default|write] [--p-large FRAC] [--s-large BYTES]
//!               [--sho-handoff N] [--seed S] [--base-port P]
//!               [--fault-profile SPEC] [--hedge]
//!               [--out FILE] [--resume]
//! ```

use minos::core::client::RetryPolicy;
use minos::core::dispatch::DisciplineKind;
use minos::figures::{run_sweep_resuming, ChurnSweepSpec, Policy, SweepConfig, SweepPoint};
use minos::kv::EvictionPolicy;
use minos::net::FaultProfile;
use minos::obs::JsonValue;
use minos::workload::{profiles, DEFAULT_PROFILE};
use std::time::Duration;

const USAGE: &str = "minos-figures: rate sweeps (Minos vs HKH/SHO) over UDP loopback

USAGE:
    minos-figures --rates R1,R2,... [OPTIONS]

OPTIONS:
    --rates R1,R2,...     offered rates (req/s) swept per policy, in order
    --policies LIST       comma list of minos,hkh,sho (default all three)
    --disciplines LIST    comma list of queue disciplines the minos
                          policy sweeps (size-aware,cfcfs,dfcfs,jsq,
                          round-robin,random; default size-aware);
                          baselines always run their builtin dispatch
    --cores N             server cores = UDP queues per server (default 2)
    --sho-handoff N       SHO dispatch cores (default 1)
    --clients N           client threads per point (default 1)
    --duration SECS       measured window per point (default 2)
    --keys N              dataset keys (default 2000)
    --large-keys N        large keys in the dataset (default 8)
    --profile NAME        'default' (95:5 GET:PUT) or 'write' (50:50)
    --p-large FRAC        override the large-request fraction (0..1)
    --s-large BYTES       override the maximum large item size (the
                          paper's s_L; Figure 7 sweeps it)
    --seed S              RNG seed (default 42)
    --base-port P         queue-0 port of the first server instance
                          (default 9500); instance i of the
                          (policy x discipline) enumeration binds cores
                          ports from P + i*cores
    --churn-mem BYTES     churn mode: replace the paper profile with the
                          churn workload (zipfian reuse, --keys
                          population) against a BYTES-sized mempool that
                          the working set outgrows; minos-only
    --evictions LIST      comma list of eviction policies the churn
                          sweep compares, one server instance each
                          (none,clock,size-aware-clock; default
                          clock,size-aware-clock); needs --churn-mem
    --churn-value-min B   smallest churn value in bytes (default 64)
    --churn-value-max B   largest churn value in bytes (default 4096)
    --churn-ttl-ms MS     TTL stamped on every churn PUT (default 0)
    --fault-profile SPEC  chaos mode: wrap every measured client's
                          transport in a deterministic fault injector,
                          e.g. 'drop=0.01,reorder=8,seed=42' (the
                          preload stays clean). Enables client retries
                          (25 ms x8 unless --retry-timeout-ms overrides)
                          so injected drops surface as retries and
                          explicit timed_out loss; the spec is recorded
                          in each point and in its --resume key
    --hedge               hedged requests on the measured clients: a
                          small request unanswered past the adaptive
                          hedge delay is duplicated to another RX
                          queue, first reply wins (needs --cores >= 2)
    --retry-timeout-ms MS client retry timeout (default: off; 25 with
                          --fault-profile)
    --max-retries N       client retry budget (default 8)
    --out FILE            also write the sweep as a JSON array to FILE
    --resume              skip (policy, discipline, eviction, fault,
                          hedging, rate) points already present in --out
                          and carry them into the new file; points from
                          outside this invocation's enumeration survive
                          verbatim, so an interrupted sweep continues
                          where it stopped and chained variant runs
                          (e.g. hedging off, then on) accumulate into
                          one figure
    -h, --help            this help
";

fn parse() -> Result<(SweepConfig, Option<String>, bool), String> {
    let mut cfg = SweepConfig::loopback(9500, Vec::new());
    let mut out = None;
    let mut resume = false;
    let mut p_large_override: Option<f64> = None;
    let mut s_large_override: Option<u64> = None;
    let mut churn_mem: Option<usize> = None;
    let mut evictions = vec![EvictionPolicy::Clock, EvictionPolicy::SizeAwareClock];
    let mut evictions_given = false;
    let mut churn_value_min = 64u64;
    let mut churn_value_max = 4096u64;
    let mut churn_ttl_ms = 0u64;
    let mut retry_timeout_ms: Option<u64> = None;
    let mut max_retries = 8u32;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--rates" => {
                cfg.rates = value("--rates")?
                    .split(',')
                    .map(|r| r.trim().parse::<f64>().map_err(|e| format!("--rates: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--policies" => {
                cfg.policies = value("--policies")?
                    .split(',')
                    .map(|p| {
                        Policy::from_name(p.trim())
                            .ok_or_else(|| format!("unknown policy: {p} (minos|hkh|sho)"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--disciplines" => {
                cfg.disciplines = value("--disciplines")?
                    .split(',')
                    .map(|d| {
                        DisciplineKind::from_name(d.trim()).ok_or_else(|| {
                            format!(
                                "unknown discipline: {d} (size-aware|cfcfs|dfcfs|jsq|round-robin|random)"
                            )
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--cores" => {
                cfg.cores = value("--cores")?
                    .parse()
                    .map_err(|e| format!("--cores: {e}"))?
            }
            "--sho-handoff" => {
                cfg.sho_handoff = value("--sho-handoff")?
                    .parse()
                    .map_err(|e| format!("--sho-handoff: {e}"))?
            }
            "--clients" => {
                cfg.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--duration" => {
                cfg.duration = Duration::from_secs_f64(
                    value("--duration")?
                        .parse()
                        .map_err(|e| format!("--duration: {e}"))?,
                )
            }
            "--keys" => {
                cfg.keys = value("--keys")?
                    .parse()
                    .map_err(|e| format!("--keys: {e}"))?
            }
            "--large-keys" => {
                cfg.large_keys = value("--large-keys")?
                    .parse()
                    .map_err(|e| format!("--large-keys: {e}"))?
            }
            "--profile" => {
                cfg.profile = match value("--profile")?.as_str() {
                    "default" => DEFAULT_PROFILE,
                    "write" => profiles::WRITE_INTENSIVE_PROFILE,
                    other => return Err(format!("unknown profile: {other}")),
                }
            }
            "--p-large" => {
                p_large_override = Some(
                    value("--p-large")?
                        .parse()
                        .map_err(|e| format!("--p-large: {e}"))?,
                )
            }
            "--s-large" => {
                s_large_override = Some(
                    value("--s-large")?
                        .parse()
                        .map_err(|e| format!("--s-large: {e}"))?,
                )
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--base-port" => {
                cfg.base_port = value("--base-port")?
                    .parse()
                    .map_err(|e| format!("--base-port: {e}"))?
            }
            "--churn-mem" => {
                churn_mem = Some(
                    value("--churn-mem")?
                        .parse()
                        .map_err(|e| format!("--churn-mem: {e}"))?,
                )
            }
            "--evictions" => {
                evictions_given = true;
                evictions = value("--evictions")?
                    .split(',')
                    .map(|p| {
                        EvictionPolicy::from_name(p.trim()).ok_or_else(|| {
                            format!("unknown eviction policy: {p} (none|clock|size-aware-clock)")
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--churn-value-min" => {
                churn_value_min = value("--churn-value-min")?
                    .parse()
                    .map_err(|e| format!("--churn-value-min: {e}"))?
            }
            "--churn-value-max" => {
                churn_value_max = value("--churn-value-max")?
                    .parse()
                    .map_err(|e| format!("--churn-value-max: {e}"))?
            }
            "--churn-ttl-ms" => {
                churn_ttl_ms = value("--churn-ttl-ms")?
                    .parse()
                    .map_err(|e| format!("--churn-ttl-ms: {e}"))?
            }
            "--fault-profile" => {
                let spec = value("--fault-profile")?;
                FaultProfile::parse(&spec).map_err(|e| format!("--fault-profile: {e}"))?;
                cfg.fault_profile = Some(spec);
            }
            "--hedge" => cfg.hedge = true,
            "--retry-timeout-ms" => {
                retry_timeout_ms = Some(
                    value("--retry-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--retry-timeout-ms: {e}"))?,
                )
            }
            "--max-retries" => {
                max_retries = value("--max-retries")?
                    .parse()
                    .map_err(|e| format!("--max-retries: {e}"))?
            }
            "--out" => out = Some(value("--out")?),
            "--resume" => resume = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if cfg.rates.is_empty() {
        return Err("--rates is required (comma-separated req/s ladder)".into());
    }
    if resume && out.is_none() {
        return Err("--resume needs --out (the file holding the finished points)".into());
    }
    if let Some(p) = p_large_override {
        if !(0.0..=1.0).contains(&p) {
            return Err("--p-large must be in [0, 1]".into());
        }
        cfg.profile.p_large = p;
    }
    if let Some(s) = s_large_override {
        if s == 0 {
            return Err("--s-large must be positive".into());
        }
        cfg.profile.large_max = s;
    }
    if cfg.hedge && cfg.cores < 2 {
        return Err("--hedge needs --cores >= 2 (the hedge copy goes to another queue)".into());
    }
    // Under fault injection retries default on: without them every
    // injected drop voids the point's zero-loss verdict instead of
    // surfacing as a retransmit (or an explicit timed_out loss).
    let retry_ms = retry_timeout_ms.or(cfg.fault_profile.is_some().then_some(25));
    if let Some(ms) = retry_ms {
        if ms == 0 {
            return Err("--retry-timeout-ms must be positive".into());
        }
        cfg.retry = Some(RetryPolicy::new(Duration::from_millis(ms), max_retries));
    }
    match churn_mem {
        Some(mempool_bytes) => {
            cfg.policies = vec![Policy::Minos];
            cfg.churn = Some(ChurnSweepSpec {
                mempool_bytes,
                evictions,
                value_min: churn_value_min,
                value_max: churn_value_max,
                ttl_ms: churn_ttl_ms,
            });
        }
        None if evictions_given => {
            return Err("--evictions needs --churn-mem (churn mode)".into());
        }
        None => {}
    }
    Ok((cfg, out, resume))
}

/// Reads the finished points out of an interrupted sweep's `--out`
/// file. A missing file is an empty sweep (first run with `--resume` is
/// legal); an unparseable one is an error, not silently re-swept.
fn read_existing(path: &str) -> Result<Vec<SweepPoint>, String> {
    let doc = match std::fs::read_to_string(path) {
        Ok(doc) => doc,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {path}: {e}")),
    };
    let v = JsonValue::parse(&doc).map_err(|e| format!("{path}: {e}"))?;
    let arr = v
        .as_array()
        .ok_or_else(|| format!("{path}: expected a JSON array of sweep points"))?;
    arr.iter()
        .map(|p| SweepPoint::parse(p).ok_or_else(|| format!("{path}: malformed sweep point")))
        .collect()
}

fn main() {
    let (cfg, out, resume) = match parse() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let existing = if resume {
        match read_existing(out.as_deref().expect("parse enforced --out")) {
            Ok(points) => {
                eprintln!(
                    "minos-figures: resuming past {} finished points",
                    points.len()
                );
                points
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    } else {
        Vec::new()
    };
    eprintln!(
        "minos-figures: {} policies x {} disciplines x {} rates, {} cores, {} clients, {:?}/point, {} keys ({} large)",
        cfg.policies.len(),
        cfg.disciplines.len(),
        cfg.rates.len(),
        cfg.cores,
        cfg.clients,
        cfg.duration,
        cfg.keys,
        cfg.large_keys,
    );
    if let Some(spec) = &cfg.fault_profile {
        eprintln!(
            "minos-figures: chaos mode — fault profile '{spec}', hedging {}, retry {:?}",
            if cfg.hedge { "on" } else { "off" },
            cfg.retry.map(|r| r.timeout),
        );
    }
    if let Some(churn) = &cfg.churn {
        eprintln!(
            "minos-figures: churn mode — {} byte mempool, values {}..{} B, ttl {} ms, evictions {}",
            churn.mempool_bytes,
            churn.value_min,
            churn.value_max,
            churn.ttl_ms,
            churn
                .evictions
                .iter()
                .map(|e| e.name())
                .collect::<Vec<_>>()
                .join(","),
        );
    }

    let points = run_sweep_resuming(&cfg, &existing, |point| {
        // Stream each point as it lands, JSONL: the knee is visible
        // while the sweep still runs.
        println!("{}", point.to_json());
    });

    if let Some(path) = out {
        // Union semantics on write: finished points from the existing
        // file that this invocation did not enumerate (a different
        // hedging mode, fault profile, or discipline set) are carried
        // through verbatim, existing-first. That is what lets a figure
        // accumulate across chained --resume invocations — the
        // committed BENCH_fig_hedging.json protocol runs hedging off,
        // then on, into the same file.
        let fresh: std::collections::HashSet<String> = points.iter().map(|p| p.key()).collect();
        let carried: Vec<&SweepPoint> = existing
            .iter()
            .filter(|p| !fresh.contains(&p.key()))
            .collect();
        let body: Vec<String> = carried
            .iter()
            .copied()
            .chain(points.iter())
            .map(|p| format!("  {}", p.to_json()))
            .collect();
        let doc = format!("[\n{}\n]\n", body.join(",\n"));
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "minos-figures: wrote {} points to {path} ({} carried from outside this sweep)",
            body.len(),
            carried.len()
        );
    }
}
