//! Shared machine-readable report rendering for `minos-server` and
//! `minos-loadgen`.
//!
//! Both binaries print a single JSON object to stdout under `--json`.
//! They used to hand-roll that object with `format!` templates that had
//! drifted into near-duplicates; this module gives them one builder
//! ([`JsonObj`]) and renders the server's exit report straight from a
//! [`minos_obs::Snapshot`], so the legacy field names the CI perf gate
//! asserts (`transport.tx_copied_bytes`, `pool.hit_rate`,
//! `ingest.put_copied_bytes`, ...) and the unified metric registry can
//! never disagree — the report *is* the snapshot, re-keyed.
//!
//! Hand-rolled on purpose: the offline build vendors no serde, and every
//! value here is a number, bool, string or pre-rendered JSON fragment.

use minos_obs::Snapshot;
use minos_stats::Quantiles;
use std::fmt::Write as _;

/// Incremental JSON-object builder. Keys are code-controlled ASCII
/// identifiers (no escaping beyond [`debug_assert!`]); values are typed
/// or pre-rendered fragments.
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl JsonObj {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        debug_assert!(
            name.bytes().all(|b| b != b'"' && b != b'\\'),
            "report keys are plain identifiers: {name:?}"
        );
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{name}\":");
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, name: &str, v: u64) -> Self {
        self.key(name);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field with `decimals` fractional digits.
    pub fn f64(mut self, name: &str, v: f64, decimals: usize) -> Self {
        self.key(name);
        let v = if v.is_finite() { v } else { 0.0 };
        let _ = write!(self.buf, "{v:.decimals$}");
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, name: &str, v: bool) -> Self {
        self.key(name);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a string field, escaping quotes, backslashes and control
    /// characters.
    pub fn str(mut self, name: &str, v: &str) -> Self {
        self.key(name);
        self.buf.push('"');
        for c in v.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.buf, "\\u{:04x}", c as u32);
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
        self
    }

    /// Adds a pre-rendered JSON fragment (nested object, array, `null`,
    /// or a [`JsonObj::finish`] result) under `name`.
    pub fn raw(mut self, name: &str, fragment: &str) -> Self {
        self.key(name);
        self.buf.push_str(fragment);
        self
    }

    /// Closes the object and returns it.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Latency quantiles as a JSON object (microseconds), `"null"` when
/// nothing completed. Shared so the server and loadgen reports render
/// quantiles identically.
pub fn quantiles_json(q: Option<Quantiles>) -> String {
    match q {
        None => "null".into(),
        Some(q) => JsonObj::new()
            .u64("count", q.count)
            .f64("mean_us", q.mean_us, 3)
            .f64("p50_us", q.p50_us, 3)
            .f64("p90_us", q.p90_us, 3)
            .f64("p95_us", q.p95_us, 3)
            .f64("p99_us", q.p99_us, 3)
            .f64("p999_us", q.p999_us, 3)
            .f64("p9999_us", q.p9999_us, 3)
            .f64("max_us", q.max_us, 3)
            .finish(),
    }
}

fn counter(snap: &Snapshot, name: &str) -> u64 {
    snap.counter(name).unwrap_or(0)
}

fn gauge(snap: &Snapshot, name: &str) -> f64 {
    snap.gauge(name).unwrap_or(0.0)
}

/// Renders `minos-server`'s `--json` exit report from its final registry
/// snapshot.
///
/// The top-level shape is frozen — CI gates parse these exact keys —
/// and every value now comes from the canonical dotted metrics (the
/// legacy key is an alias of the metric named in the comment). The full
/// snapshot rides along under `"metrics"` for consumers that want the
/// per-core histograms and everything else the legacy shape omits.
pub fn server_exit_report(drained: bool, snap: &Snapshot) -> String {
    let transport = JsonObj::new()
        .bool("batched", gauge(snap, "transport.batched") != 0.0)
        .u64("rx_packets", counter(snap, "transport.rx_packets"))
        .u64("tx_packets", counter(snap, "transport.tx_packets"))
        .u64("tx_dropped", counter(snap, "transport.tx_dropped"))
        .u64("rx_syscalls", counter(snap, "transport.rx_syscalls"))
        .u64("tx_syscalls", counter(snap, "transport.tx_syscalls"))
        .u64(
            "tx_copied_bytes",
            counter(snap, "transport.tx_copied_bytes"),
        )
        .finish();
    let pool = JsonObj::new()
        .u64("hits", counter(snap, "pool.hits"))
        .u64("misses", counter(snap, "pool.misses"))
        .u64("outstanding", gauge(snap, "pool.outstanding") as u64)
        .f64("hit_rate", gauge(snap, "pool.hit_rate"), 6)
        .finish();
    let ingest = JsonObj::new()
        .u64("puts", counter(snap, "store.puts"))
        .u64("put_failures", counter(snap, "store.put_failures"))
        .u64("put_copied_bytes", counter(snap, "ingest.put_copied_bytes"))
        .u64(
            "reassembly_evictions",
            counter(snap, "ingest.reassembly_evictions"),
        )
        .finish();
    let capacity = JsonObj::new()
        .u64("evictions", counter(snap, "store.evictions"))
        .u64("evicted_bytes", counter(snap, "store.evicted_bytes"))
        .u64("expired_keys", counter(snap, "store.expired_keys"))
        .u64(
            "admission_rejects",
            counter(snap, "store.admission_rejects"),
        )
        .u64(
            "accounting_warnings",
            counter(snap, "store.accounting_warnings"),
        )
        .u64("used_bytes", gauge(snap, "mempool.used_bytes") as u64)
        .f64("occupancy", gauge(snap, "mempool.occupancy"), 6)
        .u64(
            "high_watermark_bytes",
            gauge(snap, "mempool.high_watermark_bytes") as u64,
        )
        .u64(
            "low_watermark_bytes",
            gauge(snap, "mempool.low_watermark_bytes") as u64,
        )
        .finish();
    JsonObj::new()
        .bool("drained", drained)
        .u64("epochs", counter(snap, "engine.epochs"))
        .u64("soft_queue_drops", counter(snap, "engine.soft_queue_drops"))
        .u64("malformed", counter(snap, "engine.malformed"))
        .raw("transport", &transport)
        .raw("pool", &pool)
        .raw("ingest", &ingest)
        .raw("capacity", &capacity)
        .raw("metrics", &snap.metrics_json())
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_obs::{JsonValue, MetricValue};

    #[test]
    fn builder_produces_valid_json() {
        let nested = JsonObj::new().u64("inner", 7).finish();
        let s = JsonObj::new()
            .u64("a", 1)
            .f64("b", 0.5, 3)
            .bool("c", true)
            .raw("d", &nested)
            .raw("e", "null")
            .finish();
        let doc = JsonValue::parse(&s).expect("valid JSON");
        assert_eq!(
            doc.get("a").and_then(|v| v.as_num()).unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            doc.get("d")
                .and_then(|v| v.get("inner"))
                .and_then(|v| v.as_num())
                .unwrap()
                .as_u64(),
            Some(7)
        );
    }

    #[test]
    fn exit_report_keeps_legacy_keys() {
        let snap = Snapshot::new(
            0,
            1000,
            vec![
                ("engine.epochs".into(), MetricValue::Counter(5)),
                ("transport.tx_copied_bytes".into(), MetricValue::Counter(0)),
                ("transport.batched".into(), MetricValue::Gauge(1.0)),
                ("pool.hits".into(), MetricValue::Counter(100)),
                ("pool.hit_rate".into(), MetricValue::Gauge(1.0)),
                ("store.puts".into(), MetricValue::Counter(42)),
                ("ingest.put_copied_bytes".into(), MetricValue::Counter(999)),
                ("store.evictions".into(), MetricValue::Counter(13)),
                (
                    "mempool.high_watermark_bytes".into(),
                    MetricValue::Gauge(900.0),
                ),
            ],
        );
        let doc = JsonValue::parse(&server_exit_report(true, &snap)).expect("valid JSON");
        let num = |path: &[&str]| {
            let mut v = &doc;
            for k in path {
                v = v.get(k).unwrap_or_else(|| panic!("missing {k}"));
            }
            v.as_num().unwrap().as_u64().unwrap()
        };
        assert_eq!(num(&["epochs"]), 5);
        assert_eq!(num(&["soft_queue_drops"]), 0, "absent metrics read as 0");
        assert_eq!(num(&["transport", "tx_copied_bytes"]), 0);
        assert_eq!(num(&["pool", "hits"]), 100);
        assert_eq!(num(&["ingest", "puts"]), 42);
        assert_eq!(num(&["ingest", "put_copied_bytes"]), 999);
        // The capacity block is additive; legacy keys stay untouched.
        assert_eq!(num(&["capacity", "evictions"]), 13);
        assert_eq!(num(&["capacity", "high_watermark_bytes"]), 900);
        assert_eq!(num(&["capacity", "expired_keys"]), 0);
        // The whole snapshot rides along under "metrics".
        assert_eq!(num(&["metrics", "ingest.put_copied_bytes", "value"]), 999);
    }
}
