//! # Minos: size-aware sharding for in-memory key-value stores
//!
//! A from-scratch Rust reproduction of *"Size-aware Sharding For
//! Improving Tail Latencies in In-memory Key-value Stores"* (Didona &
//! Zwaenepoel, NSDI 2019).
//!
//! Variable item sizes wreck tail latency: a request for a tiny item
//! queued behind a megabyte item waits orders of magnitude longer than
//! its own service time. Minos fixes this by serving small and large
//! items on **disjoint sets of cores** — small requests keep pure
//! hardware dispatch (the NIC steers them straight to a core), while the
//! rare large requests are handed off through lock-free software queues
//! to dedicated large cores, partitioned by size range. A control loop
//! re-derives the small/large threshold (the 99th percentile of request
//! sizes) and the core split every second.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | What it provides |
//! |---|---|
//! | [`core`] (`minos-core`) | the size-aware sharding engine: controller, allocation, size ranges, threaded server, client |
//! | [`baselines`] | the size-unaware comparison engines: HKH, SHO, HKH+WS |
//! | [`kv`] | MICA-style partitioned store (optimistic reads, CREW writes, mempool) |
//! | [`nic`] | virtual multi-queue NIC (Toeplitz RSS, Flow Director, lock-free rings) |
//! | [`wire`] | Ethernet/IP/UDP framing, KV message protocol, fragmentation |
//! | [`workload`] | the paper's workloads: zipfian keys, trimodal ETC sizes, Poisson arrivals |
//! | [`queue_sim`] | the Section 2.2 queueing models (Figure 2) |
//! | [`sim`] | full-system discrete-event simulator (Figures 3–10) |
//! | [`stats`] | histograms, percentiles, EWMA smoothing |
//!
//! ## Quickstart
//!
//! ```
//! use minos::core::client::Client;
//! use minos::core::engine::KvEngine;
//! use minos::core::server::{MinosServer, ServerConfig};
//! use std::time::Duration;
//!
//! // An 8-queue Minos server with room for 10k items.
//! let mut server = MinosServer::start(ServerConfig::for_test(2, 10_000));
//! let mut client = Client::new(&server, 1, 42);
//!
//! client.send_put(7, b"hello, sharded world", false);
//! assert!(client.drain(Duration::from_secs(10)));
//! client.send_get(7, false);
//! assert!(client.drain(Duration::from_secs(10)));
//!
//! assert_eq!(client.totals().completed, 2);
//! server.shutdown();
//! ```
//!
//! See `examples/` for the paper's scenarios and `crates/bench` for the
//! harnesses that regenerate every table and figure of the evaluation.

pub mod figures;
pub mod report;

pub use minos_baselines as baselines;
pub use minos_core as core;
pub use minos_kv as kv;
pub use minos_net as net;
pub use minos_nic as nic;
pub use minos_obs as obs;
pub use minos_queue_sim as queue_sim;
pub use minos_sim as sim;
pub use minos_stats as stats;
pub use minos_wire as wire;
pub use minos_workload as workload;

/// Routes human-readable binary output: stdout normally, stderr when
/// the passed args value has `json == true` (JSON mode reserves stdout
/// for the machine-readable report). Shared by `minos-server` and
/// `minos-loadgen` so their `--json` contracts cannot drift.
#[macro_export]
macro_rules! human {
    ($args:expr, $($fmt:tt)*) => {
        if $args.json {
            eprintln!($($fmt)*);
        } else {
            println!($($fmt)*);
        }
    };
}
