#!/usr/bin/env python3
"""CI gate for the churn pass: graceful behavior when the dataset
outgrows the mempool.

Reads the ``minos-loadgen --churn --json`` report and the
``minos-server --json`` exit report named on the command line and
asserts the capacity-tiering contract:

* the churn run itself was loss-free and actually overcommitted the
  store (working set >= 2x the high watermark);
* **zero OutOfMemory PUTs across the whole run** — eviction happens at
  reservation time, so not even the fill phase may bounce a write
  (``ingest.put_failures == 0``);
* the eviction machinery demonstrably ran (``capacity.evictions > 0``);
* the accounting cross-check never fired
  (``capacity.accounting_warnings == 0``) and occupancy ended at or
  under the pool's capacity;
* the hot path survived the churn: server RX pool hit rate >= 0.95
  with zero leaked buffers, and zero TX value bytes copied.

Exit codes: 0 — all gates hold; 1 — a gate failed or a report is
malformed.
"""

import json
import sys


def main() -> int:
    lg_path = sys.argv[1] if len(sys.argv) > 1 else "loadgen-churn.json"
    srv_path = sys.argv[2] if len(sys.argv) > 2 else "server-churn.json"
    lg = json.load(open(lg_path))
    srv = json.load(open(srv_path))

    failures = []

    def gate(ok, msg):
        if not ok:
            failures.append(msg)

    gate(lg["zero_loss"], "churn run lost requests")
    churn = lg.get("churn")
    gate(churn is not None, "loadgen did not run in --churn mode")

    cap = srv["capacity"]
    high = cap["high_watermark_bytes"]
    if churn is not None:
        ws = churn["working_set_bytes"]
        gate(
            high > 0 and ws >= 2 * high,
            f"no real pressure: working set {ws} B vs high watermark {high} B",
        )

    oom = srv["ingest"]["put_failures"]
    gate(oom == 0, f"OOM gate: {oom} PUTs failed at the reservation")
    gate(cap["evictions"] > 0, "eviction gate: the store never evicted")
    warnings = cap["accounting_warnings"]
    gate(warnings == 0, f"accounting gate: {warnings} cross-check warnings")
    gate(
        0.0 <= cap["occupancy"] <= 1.0,
        f"occupancy gate: {cap['occupancy']} outside [0, 1]",
    )

    hr = srv["pool"]["hit_rate"]
    gate(hr >= 0.95, f"server RX pool gate: hit rate {hr} < 0.95")
    out = srv["pool"]["outstanding"]
    gate(out == 0, f"server RX pool gate: {out} buffers leaked")
    copied = srv["transport"]["tx_copied_bytes"]
    gate(copied == 0, f"zero-copy TX gate: {copied} bytes copied")

    if failures:
        for f in failures:
            print(f"churn gate FAILED: {f}")
        return 1
    print(
        f"churn gates passed: 0 OOM PUTs, {cap['evictions']} evictions "
        f"({cap['evicted_bytes']} B), {cap['expired_keys']} expiries, "
        f"0 accounting warnings, occupancy {cap['occupancy']:.3f}, "
        f"{hr:.4f} pool hit rate, 0 tx bytes copied"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
