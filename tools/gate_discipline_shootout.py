#!/usr/bin/env python3
"""CI gate for the 2-discipline mini shoot-out.

Reads the ``minos-figures`` output named on the command line (one
size-aware and one cfcfs point at the same pre-knee rate) and checks
the committed shoot-out figure's headline: size-aware sharding holds
the small-class schedule-based p99 at or under cFCFS's.

Exit codes tell the CI retry loop what happened:

* 0 — both points loss-free and the headline holds.
* 2 — a point lost requests; the run is void (the paper's methodology
  discards lossy runs) and the caller should re-measure.
* 1 — a loss-free pair where the headline does NOT hold, or a
  malformed sweep: a real failure, no retry.
"""

import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "figures-disciplines.json"
    pts = json.load(open(path))
    if len(pts) != 2:
        print(f"discipline gate: expected 2 points, got {len(pts)}")
        return 1
    by_disc = {p["discipline"]: p for p in pts}
    if sorted(by_disc) != ["cfcfs", "size-aware"]:
        print(f"discipline gate: disciplines {sorted(by_disc)}")
        return 1
    for name, p in by_disc.items():
        if p["policy"] != "minos":
            print(f"{name}: policy {p['policy']}")
            return 1
        q = p["latency_small_us"]
        if q is None or q["count"] == 0:
            print(f"{name}: missing small-class latency")
            return 1
    lossy = [name for name, p in by_disc.items() if not p["zero_loss"]]
    if lossy:
        print(f"discipline gate: lossy run ({', '.join(lossy)}) — re-measure")
        return 2
    sa = by_disc["size-aware"]["latency_small_us"]["p99_us"]
    cf = by_disc["cfcfs"]["latency_small_us"]["p99_us"]
    if sa > cf:
        print(
            f"discipline gate: size-aware small-class p99 {sa:.1f}us > "
            f"cfcfs {cf:.1f}us at a pre-knee rate"
        )
        return 1
    print(f"discipline gate passed: size-aware small-class p99 {sa:.1f}us <= cfcfs {cf:.1f}us")
    return 0


if __name__ == "__main__":
    sys.exit(main())
