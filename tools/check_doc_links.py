#!/usr/bin/env python3
"""Offline markdown link checker for README.md and docs/.

Walks every inline markdown link ``[text](target)`` in the checked
files and fails if a relative target does not resolve to a file in the
repository, or if its ``#anchor`` does not match a heading in the
target document (GitHub slug rules). External ``http(s)://`` links are
skipped — CI runs offline by design (CARGO_NET_OFFLINE).

Usage: python3 tools/check_doc_links.py [repo-root]
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: strip markup, lowercase, drop
    everything but word characters, spaces and hyphens, spaces to
    hyphens."""
    text = heading.strip().replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text.lower())
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    out = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING.match(line)
        if m:
            base = slug(m.group(1))
            # Duplicate headings get -1, -2, ... suffixes on GitHub.
            name, n = base, 1
            while name in out:
                name = f"{base}-{n}"
                n += 1
            out.add(name)
    return out


def links_of(path: Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK.finditer(line):
            yield lineno, m.group(1)


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    files = [root / "README.md"] + sorted((root / "docs").glob("**/*.md"))
    errors = []
    checked = 0
    for f in files:
        for lineno, target in links_of(f):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            path_part, _, anchor = target.partition("#")
            dest = f if not path_part else (f.parent / path_part).resolve()
            where = f"{f.relative_to(root)}:{lineno}"
            if not dest.exists():
                errors.append(f"{where}: broken link {target!r} ({dest} missing)")
                continue
            if anchor and dest.suffix == ".md":
                if anchor not in anchors_of(dest):
                    errors.append(
                        f"{where}: anchor #{anchor} not found in "
                        f"{dest.relative_to(root)}"
                    )
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    print(f"checked {checked} relative links across {len(files)} files: "
          f"{len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
