#!/usr/bin/env python3
"""CI gate for the chaos pass: correctness under an adversarial
network.

Reads the ``minos-loadgen --fault-profile ... --hedge --json`` report
(and optionally the ``minos-server --json`` exit report) and asserts
the chaos contract:

* **zero lost acknowledged writes** — the run drained with nothing
  outstanding and nothing timed out (``zero_loss``; a timed-out
  retransmit budget is explicit loss, never silence);
* the fault injector demonstrably ran (``fault.total > 0``) — a gate
  that passes because nothing was injected proves nothing;
* hedging demonstrably recovered work: hedges fired and at least one
  hedge copy beat its original (``hedge_wins > 0``);
* the client's counter identity held against its pending table the
  whole run (``accounting_warnings == 0``);
* pools stayed bounded through drops, dups, and reorders: zero leaked
  client RX buffers, and zero value bytes copied on the TX path;
* (with a server report) the server side leaked nothing either.

Exit codes: 0 — all gates hold; 1 — a gate failed or a report is
malformed.
"""

import json
import sys


def main() -> int:
    lg_path = sys.argv[1] if len(sys.argv) > 1 else "loadgen-chaos.json"
    srv_path = sys.argv[2] if len(sys.argv) > 2 else None
    lg = json.load(open(lg_path))

    failures = []

    def gate(ok, msg):
        if not ok:
            failures.append(msg)

    gate(
        lg["zero_loss"],
        f"lost-write gate: {lg['outstanding']} outstanding, "
        f"{lg['timed_out']} timed out",
    )

    fault = lg.get("fault")
    gate(fault is not None, "loadgen did not run with --fault-profile")
    if fault is not None:
        gate(fault["total"] > 0, "injection gate: the fault injector never fired")

    gate(lg["hedging"], "loadgen did not run with --hedge")
    gate(lg["hedges_sent"] > 0, "hedge gate: no hedges fired under loss")
    gate(
        lg["hedge_wins"] > 0,
        f"hedge gate: {lg['hedges_sent']} hedges sent but none won",
    )

    warnings = lg["accounting_warnings"]
    gate(warnings == 0, f"accounting gate: {warnings} cross-check warnings")

    out = lg["pool"]["outstanding"]
    gate(out == 0, f"client pool gate: {out} buffers leaked")
    copied = lg["transport"]["tx_copied_bytes"]
    gate(copied == 0, f"zero-copy TX gate: {copied} bytes copied")

    if srv_path is not None:
        srv = json.load(open(srv_path))
        srv_out = srv["pool"]["outstanding"]
        gate(srv_out == 0, f"server pool gate: {srv_out} buffers leaked")
        srv_copied = srv["transport"]["tx_copied_bytes"]
        gate(srv_copied == 0, f"server zero-copy gate: {srv_copied} bytes copied")

    if failures:
        for f in failures:
            print(f"chaos gate FAILED: {f}")
        return 1
    print(
        f"chaos gates passed: {fault['total']} faults injected, "
        f"{lg['retransmits']} retransmits, {lg['hedges_sent']} hedges "
        f"({lg['hedge_wins']} wins, {lg['wasted_replies']} wasted replies), "
        f"0 lost acked writes, 0 accounting warnings, 0 leaked buffers, "
        f"0 tx bytes copied"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
